// The first common-bottleneck detector: throughput comparison (§4.1).
//
// Checks whether the aggregate throughput of the simultaneous replay along
// p1 and p2 (Y) adds up to the single-replay throughput along p0 (X) —
// which it should if the client's traffic traverses a queue dedicated to
// the client that is the bottleneck (per-client throttling).
//
// Two empirical distributions are compared:
//  * O_diff — Monte-Carlo distribution of the relative mean difference
//    between random halves of X and Y;
//  * T_diff — "normal throughput variation", from pairs of past WeHe tests
//    of the same client/app/carrier taken < 10 minutes apart.
//
// Both are compared as *magnitudes* (|relative difference|): a test pair's
// ordering is arbitrary, so the signed t_diff distribution is symmetric
// around zero, and the meaningful question is whether |X - Y| is small
// relative to normal variation magnitude. A one-sided Mann-Whitney U test
// then asks whether O_diff has significantly smaller rank-sum than T_diff;
// p < alpha declares a common bottleneck.
#pragma once

#include <span>
#include <vector>

#include "common/rng.hpp"

namespace wehey::core {

struct ThroughputComparisonConfig {
  double alpha = 0.05;
};

struct ThroughputComparisonResult {
  bool common_bottleneck = false;
  double p_value = 1.0;
  bool valid = false;
  std::vector<double> o_diff;  ///< Monte-Carlo |relative difference| draws
  std::vector<double> t_diff;  ///< normal-variation magnitudes used
};

/// `x`: throughput samples of the p0 single replay; `y`: per-interval sums
/// of the p1/p2 simultaneous replay samples; `t_diff`: signed or unsigned
/// historical t_diff values (magnitudes are taken internally). The number
/// of Monte-Carlo iterations equals t_diff.size(), so the two compared
/// samples have the same size (§4.1).
ThroughputComparisonResult throughput_comparison(
    std::span<const double> x, std::span<const double> y,
    std::span<const double> t_diff, Rng& rng,
    const ThroughputComparisonConfig& cfg = {});

/// Element-wise sum of the two simultaneous-replay sample vectors (the Y
/// set construction of §4.1).
std::vector<double> aggregate_samples(std::span<const double> a,
                                      std::span<const double> b);

}  // namespace wehey::core
