#include "core/loss_correlation.hpp"

#include <cmath>

#include "common/log.hpp"

namespace wehey::core {

LossCorrelationResult loss_trend_correlation(
    const netsim::ReplayMeasurement& m1, const netsim::ReplayMeasurement& m2,
    Time base_rtt, const LossCorrelationConfig& cfg) {
  LossCorrelationResult res;
  if (base_rtt <= 0) {
    // Data-dependent, not a caller bug: a degraded session can fail to
    // produce any usable RTT sample (see check.hpp's taxonomy).
    res.status = Status::invalid_data("non-positive base RTT");
    return res;
  }
  if (m1.duration() <= 0 || m2.duration() <= 0) {
    res.status = Status::insufficient_data("empty measurement window");
    return res;
  }

  const auto sigmas =
      interval_size_sweep(base_rtt, cfg.interval_sizes,
                          cfg.min_interval_rtts, cfg.max_interval_rtts);
  SeriesOptions opt;
  opt.min_packets_per_interval = cfg.min_packets_per_interval;
  opt.require_some_loss = true;

  Rng perm_rng(cfg.permutation_seed);
  for (Time sigma : sigmas) {
    IntervalOutcome outcome;
    outcome.sigma = sigma;
    const auto series = make_loss_rate_series(m1, m2, sigma, opt);
    outcome.retained_intervals = series.retained_intervals;
    stats::CorrelationResult corr;
    switch (cfg.method) {
      case CorrelationMethod::Spearman:
        corr = stats::spearman(series.path1, series.path2, cfg.alternative);
        break;
      case CorrelationMethod::Pearson:
        corr = stats::pearson(series.path1, series.path2, cfg.alternative);
        break;
      case CorrelationMethod::Kendall:
        corr = stats::kendall(series.path1, series.path2, cfg.alternative);
        break;
      case CorrelationMethod::SpearmanPermutation:
        corr = stats::spearman_permutation(series.path1, series.path2,
                                           perm_rng,
                                           cfg.permutation_iterations,
                                           cfg.alternative);
        break;
    }
    if (corr.valid) {
      outcome.valid = true;
      outcome.rho = corr.coefficient;
      outcome.p_value = corr.p_value;
      outcome.correlated = corr.p_value < cfg.fp;
    }
    // An invalid test (too few retained intervals, or a constant series)
    // counts as "not correlated": the conservative direction.
    res.per_size.push_back(outcome);
    if (outcome.valid) ++res.sizes_valid;
    if (outcome.correlated) ++res.sizes_correlated;
  }
  res.sizes_tested = res.per_size.size();
  if (res.sizes_valid == 0) {
    res.status =
        Status::insufficient_data("no interval size yielded a valid test");
  }
  res.common_bottleneck =
      static_cast<double>(res.sizes_correlated) >
      (1.0 - cfg.fp) * static_cast<double>(res.sizes_tested);
  LOG_DEBUG("loss-trend correlation: " << res.sizes_correlated << "/"
                                       << res.sizes_tested
                                       << " sizes correlated -> "
                                       << res.common_bottleneck);
  return res;
}

}  // namespace wehey::core
