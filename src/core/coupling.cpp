#include "core/coupling.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "stats/correlation.hpp"
#include "stats/descriptive.hpp"

namespace wehey::core {
namespace {

double coefficient_of_variation(std::span<const double> xs) {
  const double m = stats::mean(xs);
  if (m <= 0.0) return 0.0;
  return stats::stddev(xs) / m;
}

}  // namespace

CouplingResult coupled_bottleneck_test(std::span<const double> y1,
                                       std::span<const double> y2,
                                       const CouplingConfig& cfg) {
  CouplingResult res;
  if (y1.size() != y2.size() || y1.size() < 8) return res;

  std::vector<double> aggregate(y1.size());
  for (std::size_t i = 0; i < y1.size(); ++i) aggregate[i] = y1[i] + y2[i];

  res.cov_1 = coefficient_of_variation(y1);
  res.cov_2 = coefficient_of_variation(y2);
  res.aggregate_cov = coefficient_of_variation(aggregate);
  const double min_individual = std::min(res.cov_1, res.cov_2);
  if (min_individual <= 0.0) return res;
  res.ratio = res.aggregate_cov / min_individual;

  const auto corr = stats::pearson(y1, y2);
  res.correlation = corr.valid ? corr.coefficient : 0.0;
  res.valid = true;

  const bool individually_variable =
      min_individual >= cfg.min_individual_cov;
  const bool aggregate_pinned = res.ratio < cfg.ratio_threshold;
  const bool anti_correlated =
      !cfg.require_negative_correlation || res.correlation < 0.0;
  res.coupled =
      individually_variable && aggregate_pinned && anti_correlated;
  return res;
}

}  // namespace wehey::core
