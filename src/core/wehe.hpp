// WeHe's differentiation detector (§2.1), reused by WeHeY's
// "differentiation confirmation" step (§3.1, operation 3).
//
// The replay duration is divided into 100 intervals; per-interval
// throughput CDFs of the original and bit-inverted replays are compared
// with a two-sample Kolmogorov-Smirnov test. A significant difference
// means the path differentiates against the original trace.
#pragma once

#include <cstddef>
#include <vector>

#include "netsim/measure.hpp"

namespace wehey::core {

struct WeheConfig {
  std::size_t intervals = 100;  ///< throughput samples per replay
  double alpha = 0.05;          ///< KS significance level
  /// Minimum relative difference of mean throughputs; guards against
  /// statistically-significant-but-negligible differences on very stable
  /// links.
  double min_effect = 0.05;
};

struct WeheResult {
  bool differentiation = false;
  double ks_statistic = 0.0;
  double p_value = 1.0;
  double original_mean_bps = 0.0;
  double inverted_mean_bps = 0.0;
  /// True when the original replay was the slower one (throttled).
  bool original_slower = false;
};

/// Compare one path's original-trace replay against its bit-inverted
/// control replay.
WeheResult detect_differentiation(const netsim::ReplayMeasurement& original,
                                  const netsim::ReplayMeasurement& inverted,
                                  const WeheConfig& cfg = {});

/// Same test on precomputed throughput samples (bits/sec).
WeheResult detect_differentiation_samples(
    const std::vector<double>& original_samples,
    const std::vector<double>& inverted_samples, const WeheConfig& cfg = {});

}  // namespace wehey::core
