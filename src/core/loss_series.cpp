#include "core/loss_series.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace wehey::core {

LossRateSeries make_loss_rate_series(const netsim::ReplayMeasurement& m1,
                                     const netsim::ReplayMeasurement& m2,
                                     Time sigma, const SeriesOptions& opt) {
  WEHEY_EXPECTS(sigma > 0);
  LossRateSeries out;

  // Bin both measurements over their common time span so interval t means
  // the same wall-clock window on both paths (the replays are started
  // back-to-back; see §3.4 "Synchronization").
  const Time start = std::min(m1.start, m2.start);
  const Time end = std::max(m1.end, m2.end);
  if (end <= start) return out;
  const auto n = static_cast<std::size_t>((end - start + sigma - 1) / sigma);
  out.total_intervals = n;

  struct Bin {
    std::uint64_t txed = 0;
    std::uint64_t lost = 0;
  };
  std::vector<Bin> b1(n), b2(n);
  auto fill = [&](const netsim::ReplayMeasurement& m, std::vector<Bin>& bins) {
    auto bin_of = [&](Time t) {
      if (t < start) t = start;
      auto idx = static_cast<std::size_t>((t - start) / sigma);
      return std::min(idx, n - 1);
    };
    for (Time t : m.tx_times) ++bins[bin_of(t)].txed;
    for (Time t : m.loss_times) ++bins[bin_of(t)].lost;
  };
  fill(m1, b1);
  fill(m2, b2);

  for (std::size_t t = 0; t < n; ++t) {
    if (b1[t].txed < opt.min_packets_per_interval ||
        b2[t].txed < opt.min_packets_per_interval) {
      continue;
    }
    if (opt.require_some_loss && b1[t].lost == 0 && b2[t].lost == 0) {
      continue;
    }
    out.path1.push_back(static_cast<double>(b1[t].lost) /
                        static_cast<double>(b1[t].txed));
    out.path2.push_back(static_cast<double>(b2[t].lost) /
                        static_cast<double>(b2[t].txed));
  }
  out.retained_intervals = out.path1.size();
  return out;
}

std::vector<Time> interval_size_sweep(Time base_rtt, int count, int min_rtts,
                                      int max_rtts) {
  WEHEY_EXPECTS(base_rtt > 0);
  WEHEY_EXPECTS(count >= 2);
  WEHEY_EXPECTS(min_rtts < max_rtts);
  std::vector<Time> sizes;
  sizes.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const double rtts =
        min_rtts + (max_rtts - min_rtts) * static_cast<double>(i) /
                       static_cast<double>(count - 1);
    sizes.push_back(static_cast<Time>(rtts * static_cast<double>(base_rtt)));
  }
  return sizes;
}

}  // namespace wehey::core
