// Detection of a *coupled* shared bottleneck — the §7 extension.
//
// WeHeY's loss-trend correlation assumes the two replays are a small
// fraction of the traffic crossing the common bottleneck. The paper's §7
// countermeasure against per-flow throttling (crafting the two replays to
// appear as one flow, so they land in the same per-flow policer) breaks
// that assumption: the replays become the *only* occupants of the
// bottleneck and "significantly affect each other's performance", which
// the paper notes "will require different statistical tools".
//
// This module provides such a tool. When two elastic flows are the sole
// occupants of one token bucket, their throughputs are complementary:
// the aggregate is pinned at the bucket rate (low variability) while each
// individual flow oscillates as the two contend (high variability, often
// negatively correlated). Two flows behind *separate but identical*
// policers instead show individually-pinned rates, and flows sharing a
// large bottleneck with other traffic co-move positively. The test
// therefore declares coupling when
//
//   CoV(y1 + y2)  <  ratio_threshold * min(CoV(y1), CoV(y2))
//
// with both individual coefficients of variation above a noise floor —
// optionally strengthened by a negative Pearson correlation between the
// two series.
#pragma once

#include <span>

namespace wehey::core {

struct CouplingConfig {
  /// Aggregate CoV must be below this fraction of the smaller individual
  /// CoV.
  double ratio_threshold = 0.5;
  /// Individual series must vary at least this much (CoV floor), else the
  /// flows are individually pinned (separate policers) and the test is
  /// not applicable.
  double min_individual_cov = 0.08;
  /// Require the two series to be negatively correlated as corroboration.
  bool require_negative_correlation = true;
};

struct CouplingResult {
  bool coupled = false;
  bool valid = false;
  double aggregate_cov = 0.0;
  double cov_1 = 0.0;
  double cov_2 = 0.0;
  double ratio = 0.0;        ///< aggregate CoV / min individual CoV
  double correlation = 0.0;  ///< Pearson r between the two series
};

/// `y1`, `y2`: per-interval throughput samples of the two simultaneous
/// replays (same interval grid).
CouplingResult coupled_bottleneck_test(std::span<const double> y1,
                                       std::span<const double> y2,
                                       const CouplingConfig& cfg = {});

}  // namespace wehey::core
