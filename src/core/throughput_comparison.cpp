#include "core/throughput_comparison.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "stats/hypothesis.hpp"
#include "stats/resample.hpp"

namespace wehey::core {

std::vector<double> aggregate_samples(std::span<const double> a,
                                      std::span<const double> b) {
  const std::size_t n = std::min(a.size(), b.size());
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = a[i] + b[i];
  return out;
}

ThroughputComparisonResult throughput_comparison(
    std::span<const double> x, std::span<const double> y,
    std::span<const double> t_diff, Rng& rng,
    const ThroughputComparisonConfig& cfg) {
  ThroughputComparisonResult res;
  if (x.size() < 4 || y.size() < 4 || t_diff.size() < 8) return res;

  res.t_diff.reserve(t_diff.size());
  for (double v : t_diff) res.t_diff.push_back(std::fabs(v));

  // O_diff: one Monte-Carlo draw per T_diff data point (§4.1: the two
  // distributions are built with the same size).
  res.o_diff.reserve(t_diff.size());
  for (std::size_t i = 0; i < t_diff.size(); ++i) {
    const auto xh = stats::random_half(x, rng);
    const auto yh = stats::random_half(y, rng);
    res.o_diff.push_back(
        std::fabs(stats::relative_mean_difference(xh, yh)));
  }

  const auto test = stats::mann_whitney_u(res.o_diff, res.t_diff,
                                          stats::Alternative::Less);
  res.p_value = test.p_value;
  res.valid = test.valid;
  res.common_bottleneck = test.valid && test.p_value < cfg.alpha;
  return res;
}

}  // namespace wehey::core
