#include "core/wehe.hpp"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.hpp"
#include "stats/hypothesis.hpp"

namespace wehey::core {

WeheResult detect_differentiation_samples(
    const std::vector<double>& original_samples,
    const std::vector<double>& inverted_samples, const WeheConfig& cfg) {
  WeheResult res;
  if (original_samples.empty() || inverted_samples.empty()) return res;

  const auto ks = stats::ks_two_sample(original_samples, inverted_samples);
  res.ks_statistic = ks.statistic;
  res.p_value = ks.p_value;
  res.original_mean_bps = stats::mean(original_samples);
  res.inverted_mean_bps = stats::mean(inverted_samples);
  res.original_slower = res.original_mean_bps < res.inverted_mean_bps;

  const double hi = std::max(res.original_mean_bps, res.inverted_mean_bps);
  const double effect =
      hi > 0.0 ? std::fabs(res.original_mean_bps - res.inverted_mean_bps) / hi
               : 0.0;
  res.differentiation =
      ks.valid && ks.p_value < cfg.alpha && effect >= cfg.min_effect;
  return res;
}

WeheResult detect_differentiation(const netsim::ReplayMeasurement& original,
                                  const netsim::ReplayMeasurement& inverted,
                                  const WeheConfig& cfg) {
  return detect_differentiation_samples(
      original.throughput_samples(cfg.intervals),
      inverted.throughput_samples(cfg.intervals), cfg);
}

}  // namespace wehey::core
