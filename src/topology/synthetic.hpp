// Synthetic stand-in for M-Lab's traceroute BigQuery tables (§3.3).
//
// Generates annotated traceroute records with controlled imperfections —
// ICMP-blocking ISPs (incomplete traceroutes), IP aliasing, and server
// pairs that share transit infrastructure (and therefore converge *before*
// the client's ISP) — together with the ground truth of which pairs are
// genuinely suitable. Tests validate the TC pipeline against this ground
// truth, and the §3.3-coverage bench reproduces the paper's 52 % / 74 %
// style statistics.
#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "topology/traceroute.hpp"

namespace wehey::topology {

struct SyntheticConfig {
  std::size_t num_clients = 200;
  std::size_t num_servers = 8;
  std::size_t num_isps = 10;
  std::size_t num_transit_chains = 4;  ///< fewer chains => more sharing
  double p_client_has_traceroutes = 0.75;  ///< else: no records at all
  double p_icmp_blocked = 0.28;            ///< ISP hides hops near client
  double p_hop_alias = 0.04;               ///< per-hop extra reported IP
  double p_shared_transit = 0.42;          ///< server reuses another's chain
  std::size_t min_servers_per_client = 1;
  std::size_t max_servers_per_client = 5;
};

struct ClientTruth {
  std::string ip;
  Asn isp_asn = 0;
  bool has_any_record = false;
  bool has_complete_record = false;  ///< >= 1 record passing both filters
  bool has_suitable_topology = false;
};

struct SyntheticDataset {
  std::vector<TracerouteRecord> records;
  std::vector<ClientTruth> truth;
};

SyntheticDataset generate_mlab_dataset(const SyntheticConfig& cfg, Rng& rng);

}  // namespace wehey::topology
