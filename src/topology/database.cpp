#include "topology/database.hpp"

#include <algorithm>

namespace wehey::topology {

void TopologyDatabase::ingest(const std::vector<TopologyEntry>& entries) {
  for (const auto& e : entries) entries_[e.dst_prefix] = e;
}

std::vector<ServerPair> TopologyDatabase::lookup(
    const std::string& client_ip) const {
  const auto it = entries_.find(client_prefix(client_ip));
  if (it == entries_.end()) return {};
  return it->second.pairs;
}

std::optional<ServerPair> TopologyDatabase::pick(
    const std::string& client_ip) const {
  const auto pairs = lookup(client_ip);
  if (pairs.empty()) return std::nullopt;
  return pairs.front();
}

void TopologyDatabase::invalidate(const std::string& client_ip,
                                  const ServerPair& pair) {
  const auto it = entries_.find(client_prefix(client_ip));
  if (it == entries_.end()) return;
  auto& pairs = it->second.pairs;
  pairs.erase(std::remove_if(pairs.begin(), pairs.end(),
                             [&](const ServerPair& p) {
                               return p.server1 == pair.server1 &&
                                      p.server2 == pair.server2;
                             }),
              pairs.end());
  if (pairs.empty()) entries_.erase(it);
}

std::size_t TopologyDatabase::pair_count() const {
  std::size_t n = 0;
  for (const auto& [prefix, entry] : entries_) n += entry.pairs.size();
  return n;
}

}  // namespace wehey::topology
