#include "topology/alias.hpp"

namespace wehey::topology {

std::string AliasResolver::find(const std::string& ip) const {
  // Walk to the root (alias sets are tiny; no path compression needed).
  std::string current = ip;
  while (true) {
    const auto next = parent_.find(current);
    if (next == parent_.end() || next->second == current) return current;
    current = next->second;
  }
}

void AliasResolver::learn(const std::vector<TracerouteRecord>& records) {
  for (const auto& rec : records) {
    for (const auto& hop : rec.hops) {
      if (hop.reported_ips.size() < 2) continue;
      // Union all reported addresses under the first one's root.
      const std::string root = find(hop.reported_ips.front());
      parent_.emplace(root, root);
      bool merged_new = false;
      for (const auto& ip : hop.reported_ips) {
        const std::string r = find(ip);
        if (r != root) {
          parent_[r] = root;
          merged_new = true;
        }
        parent_.emplace(ip, root);
      }
      if (merged_new) ++sets_;
    }
  }
}

std::string AliasResolver::canonical(const std::string& ip) const {
  return find(ip);
}

std::vector<TracerouteRecord> AliasResolver::resolve(
    const std::vector<TracerouteRecord>& records) const {
  std::vector<TracerouteRecord> out;
  out.reserve(records.size());
  for (const auto& rec : records) {
    TracerouteRecord r = rec;
    for (auto& hop : r.hops) {
      const std::string canon = canonical(hop.reported_ips.front());
      hop.reported_ips.assign(1, canon);
    }
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace wehey::topology
