#include "topology/construction.hpp"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "common/log.hpp"

namespace wehey::topology {

bool suitable_pair(const TracerouteRecord& a, const TracerouteRecord& b,
                   Asn dst_asn, std::string* convergence_ip) {
  if (a.server == b.server) return false;

  // Index b's hops by IP. TC compares raw IPs (no alias resolution, §3.3);
  // filtered records have exactly one IP per hop.
  std::unordered_map<std::string, Asn> b_hops;
  for (const auto& hop : b.hops) {
    if (hop.responded) b_hops.emplace(hop.ip(), hop.asn);
  }

  bool common_inside = false;
  std::string first_convergence;
  for (const auto& hop : a.hops) {
    if (!hop.responded) continue;
    const auto it = b_hops.find(hop.ip());
    if (it == b_hops.end()) continue;
    // The destination address itself is where all paths trivially meet;
    // a *candidate intermediate node* is a common hop before it.
    const bool is_destination = hop.ip() == a.dst_ip;
    if (hop.asn == dst_asn && it->second == dst_asn) {
      if (!is_destination && !common_inside) {
        common_inside = true;
        first_convergence = hop.ip();
      }
    } else {
      // Any common node outside the destination ISP disqualifies the pair
      // (the paths would converge before entering the target area).
      return false;
    }
  }
  if (common_inside && convergence_ip != nullptr) {
    *convergence_ip = first_convergence;
  }
  return common_inside;
}

std::vector<TopologyEntry> TopologyConstructor::construct(
    const std::vector<TracerouteRecord>& records) {
  stats_ = {};
  stats_.input_records = records.size();

  // Filter (conditions (a) and (b) of §3.3).
  std::vector<const TracerouteRecord*> kept;
  for (const auto& r : records) {
    if (!r.last_hop_matches_dst_asn()) {
      ++stats_.discarded_incomplete;
      continue;
    }
    if (!r.alias_consistent()) {
      ++stats_.discarded_aliased;
      continue;
    }
    kept.push_back(&r);
  }

  // Group by destination, and by ASN for the step-1 fallback.
  std::map<std::string, std::vector<const TracerouteRecord*>> by_dst;
  std::unordered_map<Asn, std::vector<const TracerouteRecord*>> by_asn;
  for (const auto* r : kept) {
    by_dst[r->dst_ip].push_back(r);
    by_asn[r->dst_asn].push_back(r);
  }
  stats_.destinations = by_dst.size();

  std::vector<TopologyEntry> out;
  for (const auto& [dst, direct] : by_dst) {
    const Asn dst_asn = direct.front()->dst_asn;
    // Step 1: traceroutes to d itself; only if none exist does TC widen
    // to traceroutes toward the same ASN (§3.3). Since this loop iterates
    // over destinations found in the records, the fallback arms only for
    // externally supplied destinations (kept for API parity).
    std::vector<const TracerouteRecord*> candidates = direct;
    if (candidates.empty()) {
      for (const auto* r : by_asn[dst_asn]) candidates.push_back(r);
    }
    if (candidates.size() < 2) continue;

    // Steps 2+3: all pair combinations, checked for exactly-once
    // convergence inside d's ISP.
    TopologyEntry entry;
    entry.dst_prefix = client_prefix(dst);
    entry.dst_asn = dst_asn;
    std::set<std::pair<std::string, std::string>> seen;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      for (std::size_t j = i + 1; j < candidates.size(); ++j) {
        std::string convergence;
        if (!suitable_pair(*candidates[i], *candidates[j], dst_asn,
                           &convergence)) {
          continue;
        }
        auto key = std::minmax(candidates[i]->server, candidates[j]->server);
        if (!seen.insert(key).second) continue;
        entry.pairs.push_back(
            {key.first, key.second, std::move(convergence)});
      }
    }
    if (!entry.pairs.empty()) {
      ++stats_.destinations_with_topology;
      out.push_back(std::move(entry));
    }
  }
  LOG_DEBUG("TC: " << stats_.destinations_with_topology << "/"
                   << stats_.destinations
                   << " destinations have a suitable topology");
  return out;
}

}  // namespace wehey::topology
