// Traceroute records as WeHeY's topology-construction module consumes
// them: M-Lab scamper traceroutes joined with per-hop ASN/geolocation
// annotations (§3.3).
//
// A hop may report several IP addresses for the same router position (IP
// aliasing across probes); condition (b) of the paper's filter requires
// that "two subsequent links always meet at the same IP address", i.e.
// every hop reported exactly one address.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace wehey::topology {

using Asn = std::uint32_t;

struct Hop {
  std::vector<std::string> reported_ips;  ///< usually one; >1 under aliasing
  Asn asn = 0;
  bool responded = true;  ///< false when the router dropped the ICMP probe

  const std::string& ip() const { return reported_ips.front(); }
};

struct TracerouteRecord {
  std::string server;   ///< measuring M-Lab server (source)
  std::string dst_ip;   ///< traceroute destination (the client)
  Asn dst_asn = 0;
  std::vector<Hop> hops;  ///< in path order, server side first

  /// Condition (a): the last *responding* hop has the destination's ASN
  /// (fails when the client ISP blocks ICMP near the client).
  bool last_hop_matches_dst_asn() const;
  /// Condition (b): every hop reported a single IP address.
  bool alias_consistent() const;
};

/// IPv4 /24 prefix of an address in dotted-quad text form ("a.b.c.0/24").
std::string ipv4_prefix24(const std::string& ip);

/// IPv6 /48 prefix of an address in colon-hex text form
/// ("2001:db8:1::/48"). Handles "::" compression by expanding first.
std::string ipv6_prefix48(const std::string& ip);

/// TC's per-destination key (§3.3): /24 for IPv4, /48 for IPv6, chosen by
/// the address family.
std::string client_prefix(const std::string& ip);

}  // namespace wehey::topology
