// The topology database of §3.3/§3.4: the client queries it (by its own
// address) for a pair of servers forming a suitable topology; the replay
// coordinator invalidates entries whose end-of-replay traceroutes no
// longer match.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "topology/construction.hpp"

namespace wehey::topology {

class TopologyDatabase {
 public:
  /// Replace/refresh entries from a TC run (TC runs once per day, as often
  /// as the M-Lab traceroute tables update).
  void ingest(const std::vector<TopologyEntry>& entries);

  /// All server pairs usable by a client at `client_ip` (matched on the
  /// /24 prefix, like TC's output keys).
  std::vector<ServerPair> lookup(const std::string& client_ip) const;

  /// First usable pair, if any.
  std::optional<ServerPair> pick(const std::string& client_ip) const;

  /// Remove one pair after a failed end-of-replay suitability re-check
  /// (§3.4 step 4).
  void invalidate(const std::string& client_ip, const ServerPair& pair);

  std::size_t prefix_count() const { return entries_.size(); }
  std::size_t pair_count() const;

 private:
  std::map<std::string, TopologyEntry> entries_;  // keyed by /24 prefix
};

}  // namespace wehey::topology
