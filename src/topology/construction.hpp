// The topology-construction (TC) module of §3.3.
//
// TC ingests annotated traceroute records, discards those failing the two
// filter conditions, and — per traceroute destination — finds pairs of
// M-Lab servers whose paths to that destination (i) share at least one
// candidate intermediate node inside the destination's ISP and (ii) share
// no node outside it. Such a pair forms a "suitable topology": two paths
// that converge exactly once, inside the target network area.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "topology/traceroute.hpp"

namespace wehey::topology {

/// One usable {destination, server pair} tuple (TC step 4).
struct ServerPair {
  std::string server1;
  std::string server2;
  /// A common candidate intermediate node (inside the destination's ISP)
  /// where the two paths converge — the downstream end of l_c.
  std::string convergence_ip;
};

/// TC output row for one destination.
struct TopologyEntry {
  std::string dst_prefix;  ///< /24 of the destination
  Asn dst_asn = 0;
  std::vector<ServerPair> pairs;
};

struct ConstructionStats {
  std::size_t input_records = 0;
  std::size_t discarded_incomplete = 0;  ///< failed condition (a)
  std::size_t discarded_aliased = 0;     ///< failed condition (b)
  std::size_t destinations = 0;
  std::size_t destinations_with_topology = 0;
};

class TopologyConstructor {
 public:
  /// Run the full §3.3 pipeline over one batch of traceroute records.
  std::vector<TopologyEntry> construct(
      const std::vector<TracerouteRecord>& records);

  const ConstructionStats& stats() const { return stats_; }

 private:
  ConstructionStats stats_;
};

/// Step-3 pair check, exposed for testing: do the two traceroutes share at
/// least one candidate intermediate node (same-ISP hop, matched by exact
/// IP) and no common node outside the destination's ISP?
bool suitable_pair(const TracerouteRecord& a, const TracerouteRecord& b,
                   Asn dst_asn, std::string* convergence_ip = nullptr);

}  // namespace wehey::topology
