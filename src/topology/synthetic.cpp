#include "topology/synthetic.hpp"

#include <algorithm>
#include <set>

#include "common/check.hpp"
#include "topology/construction.hpp"

namespace wehey::topology {
namespace {

constexpr Asn kIspAsnBase = 64500;
constexpr Asn kServerAsnBase = 65000;
constexpr Asn kTransitAsnBase = 65400;

std::string client_ip(std::size_t isp, std::size_t client) {
  // One /24 per (ISP, per-ISP client index): unique up to ~25k clients.
  const std::size_t within_isp = client / 10;  // clients round-robin ISPs
  return "100." + std::to_string(isp) + "." +
         std::to_string(within_isp % 250) + "." +
         std::to_string(10 + within_isp / 250);
}

Hop make_hop(std::string ip, Asn asn) {
  Hop h;
  h.reported_ips.push_back(std::move(ip));
  h.asn = asn;
  return h;
}

}  // namespace

SyntheticDataset generate_mlab_dataset(const SyntheticConfig& cfg, Rng& rng) {
  WEHEY_EXPECTS(cfg.num_servers >= 2);
  WEHEY_EXPECTS(cfg.num_isps >= 1);
  SyntheticDataset ds;

  // Each server is assigned a transit chain; with probability
  // p_shared_transit it reuses the previous server's chain, creating pairs
  // whose paths meet outside any client ISP.
  std::vector<std::size_t> server_chain(cfg.num_servers);
  for (std::size_t s = 0; s < cfg.num_servers; ++s) {
    if (s > 0 && rng.bernoulli(cfg.p_shared_transit)) {
      server_chain[s] = server_chain[s - 1];
    } else {
      server_chain[s] = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(cfg.num_transit_chains) - 1));
    }
  }

  for (std::size_t c = 0; c < cfg.num_clients; ++c) {
    const std::size_t isp = c % cfg.num_isps;
    const Asn isp_asn = kIspAsnBase + static_cast<Asn>(isp);

    ClientTruth truth;
    truth.ip = client_ip(isp, c);
    truth.isp_asn = isp_asn;

    if (!rng.bernoulli(cfg.p_client_has_traceroutes)) {
      ds.truth.push_back(truth);
      continue;
    }

    const auto n_servers = static_cast<std::size_t>(rng.uniform_int(
        static_cast<std::int64_t>(cfg.min_servers_per_client),
        static_cast<std::int64_t>(cfg.max_servers_per_client)));
    std::vector<std::size_t> servers(cfg.num_servers);
    for (std::size_t s = 0; s < cfg.num_servers; ++s) servers[s] = s;
    std::shuffle(servers.begin(), servers.end(), rng);
    servers.resize(std::min(n_servers, servers.size()));

    // Whether this ISP blocks ICMP near this client (applies to all of the
    // client's traceroutes, as in reality it is an ISP-side policy).
    const bool icmp_blocked = rng.bernoulli(cfg.p_icmp_blocked);

    struct Generated {
      std::size_t server;
      bool passes_filter;
    };
    std::vector<Generated> generated;

    for (std::size_t s : servers) {
      TracerouteRecord rec;
      rec.server = "mlab" + std::to_string(s);
      rec.dst_ip = truth.ip;
      rec.dst_asn = isp_asn;

      const Asn server_asn = kServerAsnBase + static_cast<Asn>(s);
      rec.hops.push_back(make_hop(
          "10." + std::to_string(s) + ".0.254", server_asn));

      // Transit chain: 2 hops named by the chain, so two servers on the
      // same chain share these router IPs.
      const std::size_t chain = server_chain[s];
      const Asn transit_asn = kTransitAsnBase + static_cast<Asn>(chain);
      for (int h = 1; h <= 2; ++h) {
        rec.hops.push_back(make_hop(
            "172.16." + std::to_string(chain) + "." + std::to_string(h),
            transit_asn));
      }

      // Client ISP: per-server border router, then the client-specific
      // aggregation router shared by all servers, then the client.
      rec.hops.push_back(make_hop("100." + std::to_string(isp) + ".254." +
                                      std::to_string(s % 4),
                                  isp_asn));
      rec.hops.push_back(make_hop("100." + std::to_string(isp) + "." +
                                      std::to_string((c / 10) % 250) + ".1",
                                  isp_asn));
      rec.hops.push_back(make_hop(truth.ip, isp_asn));

      if (icmp_blocked) {
        // Hops inside the ISP do not respond; the record ends at transit.
        for (auto& hop : rec.hops) {
          if (hop.asn == isp_asn) hop.responded = false;
        }
      }
      // Independent per-hop aliasing.
      for (auto& hop : rec.hops) {
        if (hop.asn != isp_asn && rng.bernoulli(cfg.p_hop_alias)) {
          hop.reported_ips.push_back(hop.reported_ips.front() + "9");
        }
      }

      const bool passes =
          rec.last_hop_matches_dst_asn() && rec.alias_consistent();
      truth.has_any_record = true;
      truth.has_complete_record = truth.has_complete_record || passes;
      generated.push_back({s, passes});
      ds.records.push_back(std::move(rec));
    }

    // Ground truth for "suitable topology exists": two filtered records
    // from servers on *different* transit chains (same chain => common
    // transit node => unsuitable).
    for (std::size_t i = 0; i < generated.size() && !truth.has_suitable_topology; ++i) {
      for (std::size_t j = i + 1; j < generated.size(); ++j) {
        if (!generated[i].passes_filter || !generated[j].passes_filter) continue;
        if (server_chain[generated[i].server] !=
            server_chain[generated[j].server]) {
          truth.has_suitable_topology = true;
          break;
        }
      }
    }
    ds.truth.push_back(truth);
  }
  return ds;
}

}  // namespace wehey::topology
