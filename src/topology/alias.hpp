// IP alias resolution — the improvement §3.3 sketches but leaves
// unimplemented ("We could reduce the number of discarded traceroutes by
// leveraging IP alias resolution techniques as in [MIDAR]").
//
// Hops that report several IP addresses across probes are aliases of one
// router. The resolver builds alias sets (union-find over co-reported
// addresses), rewrites every hop to a canonical address, and thereby
// rescues records that condition (b) of the TC filter would discard.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "topology/traceroute.hpp"

namespace wehey::topology {

class AliasResolver {
 public:
  /// Learn alias sets from a batch of records: addresses reported by the
  /// same hop of the same traceroute are aliases of one router.
  void learn(const std::vector<TracerouteRecord>& records);

  /// Canonical address of `ip` (the representative of its alias set; the
  /// ip itself if never seen aliased).
  std::string canonical(const std::string& ip) const;

  /// Copy of `records` with every hop rewritten to one canonical address —
  /// all rewritten records pass the alias-consistency filter.
  std::vector<TracerouteRecord> resolve(
      const std::vector<TracerouteRecord>& records) const;

  std::size_t alias_set_count() const { return sets_; }

 private:
  std::string find(const std::string& ip) const;

  // Union-find over addresses (path compression applied lazily in learn).
  mutable std::unordered_map<std::string, std::string> parent_;
  std::size_t sets_ = 0;
};

}  // namespace wehey::topology
