#include "topology/traceroute.hpp"

#include <vector>

namespace wehey::topology {

bool TracerouteRecord::last_hop_matches_dst_asn() const {
  for (auto it = hops.rbegin(); it != hops.rend(); ++it) {
    if (it->responded) return it->asn == dst_asn;
  }
  return false;
}

bool TracerouteRecord::alias_consistent() const {
  for (const auto& hop : hops) {
    if (hop.reported_ips.size() != 1) return false;
  }
  return true;
}

std::string ipv4_prefix24(const std::string& ip) {
  // Strip the final ".x" octet and append ".0/24".
  const auto last_dot = ip.rfind('.');
  if (last_dot == std::string::npos) return ip + "/24";
  return ip.substr(0, last_dot) + ".0/24";
}

std::string ipv6_prefix48(const std::string& ip) {
  // Expand "::" so the address has all eight hextets, then keep the first
  // three (48 bits).
  std::vector<std::string> hextets;
  const auto dbl = ip.find("::");
  auto split = [](const std::string& s, std::vector<std::string>& out) {
    std::size_t start = 0;
    while (start <= s.size()) {
      const auto colon = s.find(':', start);
      if (colon == std::string::npos) {
        if (start < s.size()) out.push_back(s.substr(start));
        break;
      }
      if (colon > start) out.push_back(s.substr(start, colon - start));
      start = colon + 1;
    }
  };
  if (dbl == std::string::npos) {
    split(ip, hextets);
  } else {
    std::vector<std::string> head, tail;
    split(ip.substr(0, dbl), head);
    split(ip.substr(dbl + 2), tail);
    hextets = head;
    while (hextets.size() + tail.size() < 8) hextets.push_back("0");
    hextets.insert(hextets.end(), tail.begin(), tail.end());
  }
  while (hextets.size() < 3) hextets.push_back("0");
  return hextets[0] + ":" + hextets[1] + ":" + hextets[2] + "::/48";
}

std::string client_prefix(const std::string& ip) {
  return ip.find(':') != std::string::npos ? ipv6_prefix48(ip)
                                           : ipv4_prefix24(ip);
}

}  // namespace wehey::topology
