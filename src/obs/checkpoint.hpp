// Sweep checkpoint journal ("wehey.sweep_checkpoint.v1"): crash-safe
// resume for long grid sweeps.
//
// The journal is an append-only JSONL file. After every completed run the
// sweep driver appends one line
//
//   {"schema": "wehey.sweep_checkpoint.v1", "sweep": "<sweep name>",
//    "run": "<unique run id>", "cell": "<grid cell>", "seed": N,
//    "index": N, "report": "<serialized RunReport, as a JSON string>"}
//
// and flushes it, so a kill -9 loses at most the run in flight. On resume
// the driver loads the journal, skips every journaled run id, and
// re-absorbs the journaled reports into the SweepAggregator *in run-index
// order* — the embedded report string preserves the RunReport's exact
// bytes, and SweepAggregator::add_run_json is bit-equal to the in-process
// add_run path, so a killed-and-resumed sweep produces a sweep report
// byte-identical to an uninterrupted one, at any WEHEY_THREADS.
//
// A torn trailing line (the write the kill interrupted) is expected and
// silently dropped; the run it described simply re-executes.
#pragma once

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

namespace wehey::obs {

/// One journaled run.
struct CheckpointEntry {
  std::string run;          ///< unique run id within the sweep
  std::string cell;         ///< grid-cell label; may be empty
  std::uint64_t seed = 0;
  std::uint64_t index = 0;  ///< position in the sweep's run order
  std::string report_json;  ///< the RunReport's exact serialized bytes
};

/// Appends journal lines, one fflush'd line per completed run.
class CheckpointWriter {
 public:
  CheckpointWriter() = default;
  ~CheckpointWriter() { close(); }
  CheckpointWriter(const CheckpointWriter&) = delete;
  CheckpointWriter& operator=(const CheckpointWriter&) = delete;

  /// Open `path` for appending (created when missing). `sweep` is stamped
  /// into every line. Returns false on I/O error.
  bool open(const std::string& path, const std::string& sweep);
  bool is_open() const { return file_ != nullptr; }

  /// Append one entry and flush. No-op when not open.
  void append(const CheckpointEntry& entry);

  void close();

 private:
  std::FILE* file_ = nullptr;
  std::string sweep_;
};

/// A loaded journal: entries in file order, keyed by run id.
class CheckpointJournal {
 public:
  /// Parse the journal at `path`. A missing file yields an empty journal
  /// (and returns true): "nothing completed yet" is a valid resume state.
  /// A torn trailing line is dropped; reading stops there. Returns false
  /// only on a malformed line that is not the last one (with `error` set
  /// when non-null).
  static bool load(const std::string& path, CheckpointJournal& out,
                   std::string* error = nullptr);

  /// The journaled entry for `run_id`, or nullptr. Duplicate run ids keep
  /// the last line (a re-run supersedes its predecessor).
  const CheckpointEntry* find(const std::string& run_id) const;

  const std::vector<CheckpointEntry>& entries() const { return entries_; }
  const std::string& sweep() const { return sweep_; }
  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }

 private:
  std::vector<CheckpointEntry> entries_;
  std::map<std::string, std::size_t> by_run_;
  std::string sweep_;
};

/// The journal path sweeps should use: $WEHEY_CHECKPOINT, or "" when
/// checkpointing is off.
std::string checkpoint_path_from_env();

}  // namespace wehey::obs
