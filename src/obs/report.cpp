#include "obs/report.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "obs/timeline.hpp"

namespace wehey::obs {

std::string RunReport::to_json(const MetricsRegistry* metrics) const {
  std::ostringstream out;
  out << "{\n";
  out << "  \"schema\": \"wehey.run_report.v2\",\n";
  out << "  \"run\": \"" << json_escape(run) << "\",\n";
  out << "  \"seed\": " << seed << ",\n";
  out << "  \"fault_plan\": \"" << json_escape(fault_plan) << "\",\n";
  out << "  \"verdict\": \"" << json_escape(verdict) << "\",\n";
  out << "  \"reason\": \"" << json_escape(reason) << "\",\n";
  out << "  \"stages\": [";
  for (std::size_t i = 0; i < stages.size(); ++i) {
    const auto& s = stages[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"name\": \"" << json_escape(s.name) << "\""
        << ", \"sim_start_us\": "
        << json_number(static_cast<double>(s.sim_start) / 1000.0)
        << ", \"sim_end_us\": "
        << json_number(static_cast<double>(s.sim_end) / 1000.0)
        << ", \"sim_ms\": " << json_number(to_milliseconds(s.sim_end) -
                                           to_milliseconds(s.sim_start));
    if (s.wall_ms >= 0.0) {
      out << ", \"wall_ms\": " << json_number(s.wall_ms);
    }
    out << "}";
  }
  out << (stages.empty() ? "" : "\n  ") << "],\n";
  out << "  \"values\": {";
  bool first = true;
  for (const auto& [name, v] : values) {
    out << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
        << "\": " << json_number(v);
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n";
  out << "  \"injection\": {";
  int total = 0;
  first = true;
  for (const auto& [kind, n] : injection) {
    out << (first ? "\n" : ",\n") << "    \"" << json_escape(kind)
        << "\": " << n;
    total += n;
    first = false;
  }
  if (!first) out << ",\n    \"total\": " << total << "\n  ";
  out << "},\n";
  // v2: quantiles pre-derived from the histogram bins, so downstream
  // readers (wehey_cli inspect, tools/trace_stats.py, dashboards) get
  // p50/p90/p99 without re-walking the bins themselves.
  out << "  \"percentiles\": {";
  first = true;
  if (metrics != nullptr) {
    for (const auto& [name, h] : metrics->histograms()) {
      if (h.count() == 0) continue;
      out << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
          << "\": {\"p50\": " << json_number(histogram_quantile(h, 0.50))
          << ", \"p90\": " << json_number(histogram_quantile(h, 0.90))
          << ", \"p99\": " << json_number(histogram_quantile(h, 0.99))
          << "}";
      first = false;
    }
  }
  out << (first ? "" : "\n  ") << "},\n";
  out << "  \"metrics\": ";
  if (metrics != nullptr) {
    out << metrics->to_json(2);
  } else {
    out << "{\"counters\": {}, \"gauges\": {}, \"histograms\": {}}";
  }
  out << "\n}\n";
  return out.str();
}

std::string report_path_from_env(const std::string& run_name) {
  if (const char* path = std::getenv("WEHEY_REPORT")) {
    if (path[0] != 0 && std::string(path) != "0") return path;
  }
  if (const char* dir = std::getenv("WEHEY_REPORT_DIR")) {
    if (dir[0] != 0) return std::string(dir) + "/" + run_name + ".report.json";
  }
  return {};
}

bool report_wall_times() {
  const char* v = std::getenv("WEHEY_REPORT_WALL");
  return v != nullptr && v[0] != 0 && std::string(v) != "0";
}

bool write_report_file(const std::string& path, const std::string& json) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::size_t wrote = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  return wrote == json.size();
}

}  // namespace wehey::obs
