#include "obs/report.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include <cmath>

#include "obs/aggregate.hpp"
#include "obs/timeline.hpp"

namespace wehey::obs {

AuditSection classify_audit(const GroundTruthSection& truth,
                            bool observed_positive, bool mechanism_mismatch,
                            bool budget_exhausted,
                            const DecisionSection& decision) {
  AuditSection audit;
  if (!truth.present) return audit;
  audit.present = true;
  // A perfect localizer reports "evidence within the target area" exactly
  // when a differentiating limiter sits at/behind the convergence point —
  // unless a sanity-check third flow shares it, in which case the
  // per-client conclusion is the wrong one by construction (§5).
  audit.expected_positive = truth.differentiated &&
                            truth.within_target_area && !truth.sanity_check;
  audit.observed_positive = observed_positive;
  if (budget_exhausted) {
    // No analyzable verdict: excluded from the confusion ratios, never
    // counted for or against accuracy.
    audit.classification = "skipped";
    audit.mismatch_reason = "budget-exhausted";
    return audit;
  }
  if (audit.expected_positive) {
    audit.classification = observed_positive ? "tp" : "fn";
  } else {
    audit.classification = observed_positive ? "fp" : "tn";
  }
  if (observed_positive == audit.expected_positive) return audit;
  // Mismatch provenance, most-specific first. The sub-margin case shares
  // its threshold with the sweep knife-edge gate, so a "sub-margin-miss"
  // run is exactly one the gate would flag rather than fail.
  if (mechanism_mismatch) {
    audit.mismatch_reason = "mechanism-mismatch";
  } else if (!decision.evaluated) {
    audit.mismatch_reason = "not-evaluated";
  } else if (!decision.has_margin) {
    audit.mismatch_reason = "no-margin";
  } else if (std::abs(decision.margin) < knife_edge_margin_from_env()) {
    audit.mismatch_reason = "sub-margin-miss";
  } else {
    audit.mismatch_reason = "clear-miss";
  }
  return audit;
}

std::vector<ProfileEntry> profile_from_spans(std::vector<ProfileSpan> spans) {
  // Deterministic total order: track, then start ascending, then end
  // descending (parents before children), then name.
  std::sort(spans.begin(), spans.end(),
            [](const ProfileSpan& a, const ProfileSpan& b) {
              if (a.track != b.track) return a.track < b.track;
              if (a.start != b.start) return a.start < b.start;
              if (a.end != b.end) return a.end > b.end;
              return a.name < b.name;
            });

  struct Node {
    double child_sim_ms = 0.0;
    double child_wall_ms = 0.0;
    bool child_wall_ok = true;  ///< all direct children carried wall times
  };
  std::vector<Node> nodes(spans.size());

  // Per-track containment stack: the top is the innermost span still
  // enclosing the current one. Assumes well-nested spans per track
  // (sequential stages or strictly contained sub-spans); partially
  // overlapping spans are treated as siblings.
  std::vector<std::size_t> stack;
  std::int64_t track = 0;
  bool track_open = false;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const ProfileSpan& s = spans[i];
    if (!track_open || s.track != track) {
      stack.clear();
      track = s.track;
      track_open = true;
    }
    while (!stack.empty()) {
      const ProfileSpan& top = spans[stack.back()];
      if (s.start >= top.start && s.end <= top.end) break;
      stack.pop_back();
    }
    if (!stack.empty()) {
      Node& parent = nodes[stack.back()];
      parent.child_sim_ms +=
          to_milliseconds(s.end) - to_milliseconds(s.start);
      if (s.wall_ms >= 0.0) {
        parent.child_wall_ms += s.wall_ms;
      } else {
        parent.child_wall_ok = false;
      }
    }
    stack.push_back(i);
  }

  struct Acc {
    std::uint64_t count = 0;
    double sim_ms = 0.0;
    double self_sim_ms = 0.0;
    double wall_ms = 0.0;
    double self_wall_ms = 0.0;
    bool wall_ok = true;       ///< every span of this name had wall time
    bool self_wall_ok = true;  ///< ... and so did all their children
  };
  std::map<std::string, Acc> by_name;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const ProfileSpan& s = spans[i];
    const Node& n = nodes[i];
    const double dur = to_milliseconds(s.end) - to_milliseconds(s.start);
    Acc& a = by_name[s.name];
    ++a.count;
    a.sim_ms += dur;
    a.self_sim_ms += std::max(0.0, dur - n.child_sim_ms);
    if (s.wall_ms >= 0.0) {
      a.wall_ms += s.wall_ms;
      if (n.child_wall_ok) {
        a.self_wall_ms += std::max(0.0, s.wall_ms - n.child_wall_ms);
      } else {
        a.self_wall_ok = false;
      }
    } else {
      a.wall_ok = false;
      a.self_wall_ok = false;
    }
  }

  std::vector<ProfileEntry> out;
  out.reserve(by_name.size());
  for (const auto& [name, a] : by_name) {
    ProfileEntry e;
    e.name = name;
    e.count = a.count;
    e.sim_ms = a.sim_ms;
    e.self_sim_ms = a.self_sim_ms;
    e.wall_ms = a.wall_ok ? a.wall_ms : -1.0;
    e.self_wall_ms = (a.wall_ok && a.self_wall_ok) ? a.self_wall_ms : -1.0;
    out.push_back(std::move(e));
  }
  return out;
}

std::vector<ProfileSpan> profile_spans_from_timeline(const Timeline& tl) {
  std::vector<ProfileSpan> spans;
  tl.for_each_event([&](const TimelineEvent& ev) {
    if (ev.kind != TimelineEvent::Kind::Span) return;
    ProfileSpan s;
    s.track = (static_cast<std::int64_t>(ev.pid) << 32) |
              static_cast<std::int64_t>(static_cast<std::uint32_t>(ev.tid));
    s.name = ev.name;
    s.start = ev.at;
    s.end = ev.at + ev.duration;
    spans.push_back(std::move(s));
  });
  return spans;
}

std::string RunReport::to_json(const MetricsRegistry* metrics) const {
  std::ostringstream out;
  out << "{\n";
  out << "  \"schema\": \"" << kRunReportSchema << "\",\n";
  out << "  \"run\": \"" << json_escape(run) << "\",\n";
  if (!cell.empty()) {
    out << "  \"cell\": \"" << json_escape(cell) << "\",\n";
  }
  out << "  \"seed\": " << seed << ",\n";
  out << "  \"fault_plan\": \"" << json_escape(fault_plan) << "\",\n";
  out << "  \"verdict\": \"" << json_escape(verdict) << "\",\n";
  out << "  \"reason\": \"" << json_escape(reason) << "\",\n";
  // v4: verdict provenance — every statistic/threshold comparison behind
  // the verdict, plus the run-level margin the sweep knife-edge gate
  // aggregates. Always present; a run that never reached analysis emits
  // the empty-but-valid block (evaluated=false, empty arrays).
  out << "  \"decision\": {\n";
  out << "    \"evaluated\": " << (decision.evaluated ? "true" : "false");
  if (decision.has_margin) {
    out << ",\n    \"margin\": " << json_number(decision.margin);
  }
  out << ",\n    \"detectors\": [";
  for (std::size_t i = 0; i < decision.detectors.size(); ++i) {
    const DecisionRow& d = decision.detectors[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "      {\"name\": \"" << json_escape(d.name) << "\""
        << ", \"statistic\": " << json_number(d.statistic)
        << ", \"threshold\": " << json_number(d.threshold)
        << ", \"margin\": " << json_number(d.margin)
        << ", \"outcome\": " << (d.outcome ? "true" : "false")
        << ", \"valid\": " << (d.valid ? "true" : "false");
    if (d.has_rho) {
      out << ", \"rho\": " << json_number(d.rho)
          << ", \"sigma_ms\": " << json_number(d.sigma_ms);
    }
    out << "}";
  }
  out << (decision.detectors.empty() ? "" : "\n    ") << "]";
  if (decision.has_aggregation) {
    out << ",\n    \"aggregation\": {\"sizes_tested\": "
        << decision.sizes_tested
        << ", \"sizes_correlated\": " << decision.sizes_correlated
        << ", \"sizes_valid\": " << decision.sizes_valid
        << ", \"threshold\": " << json_number(decision.aggregation_threshold)
        << ", \"margin\": " << json_number(decision.aggregation_margin)
        << ", \"outcome\": "
        << (decision.aggregation_outcome ? "true" : "false") << "}";
  }
  out << ",\n    \"degradations\": [";
  for (std::size_t i = 0; i < decision.degradations.size(); ++i) {
    out << (i == 0 ? "" : ", ") << "\""
        << json_escape(decision.degradations[i]) << "\"";
  }
  out << "]\n  },\n";
  // v5: the ground-truth ledger and the verdict audit. Both optional —
  // emitted only by runners that know what the simulator configured — so
  // reports without them keep their pre-v5 bytes after the schema tag.
  if (ground_truth.present) {
    out << "  \"ground_truth\": {\"differentiated\": "
        << (ground_truth.differentiated ? "true" : "false")
        << ", \"mechanism\": \"" << json_escape(ground_truth.mechanism)
        << "\", \"placement\": \"" << json_escape(ground_truth.placement)
        << "\", \"within_target_area\": "
        << (ground_truth.within_target_area ? "true" : "false")
        << ", \"rate_bps\": " << json_number(ground_truth.rate_bps)
        << ", \"activation_bytes\": " << ground_truth.activation_bytes
        << ", \"sanity_check\": "
        << (ground_truth.sanity_check ? "true" : "false") << "},\n";
  }
  if (audit.present) {
    out << "  \"audit\": {\"expected_positive\": "
        << (audit.expected_positive ? "true" : "false")
        << ", \"observed_positive\": "
        << (audit.observed_positive ? "true" : "false")
        << ", \"classification\": \"" << json_escape(audit.classification)
        << "\", \"mismatch_reason\": \"" << json_escape(audit.mismatch_reason)
        << "\"},\n";
  }
  out << "  \"stages\": [";
  for (std::size_t i = 0; i < stages.size(); ++i) {
    const auto& s = stages[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"name\": \"" << json_escape(s.name) << "\""
        << ", \"sim_start_us\": "
        << json_number(static_cast<double>(s.sim_start) / 1000.0)
        << ", \"sim_end_us\": "
        << json_number(static_cast<double>(s.sim_end) / 1000.0)
        << ", \"sim_ms\": " << json_number(to_milliseconds(s.sim_end) -
                                           to_milliseconds(s.sim_start));
    if (s.wall_ms >= 0.0) {
      out << ", \"wall_ms\": " << json_number(s.wall_ms);
    }
    out << "}";
  }
  out << (stages.empty() ? "" : "\n  ") << "],\n";
  // v3: per-stage self time (span duration minus directly enclosed child
  // spans), see profile_from_spans.
  out << "  \"profile\": {";
  bool first = true;
  for (const auto& p : profile) {
    out << (first ? "\n" : ",\n") << "    \"" << json_escape(p.name)
        << "\": {\"count\": " << p.count
        << ", \"sim_ms\": " << json_number(p.sim_ms)
        << ", \"self_sim_ms\": " << json_number(p.self_sim_ms);
    if (p.wall_ms >= 0.0) {
      out << ", \"wall_ms\": " << json_number(p.wall_ms);
    }
    if (p.self_wall_ms >= 0.0) {
      out << ", \"self_wall_ms\": " << json_number(p.self_wall_ms);
    }
    out << "}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n";
  out << "  \"values\": {";
  first = true;
  for (const auto& [name, v] : values) {
    out << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
        << "\": " << json_number(v);
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n";
  out << "  \"injection\": {";
  int total = 0;
  first = true;
  for (const auto& [kind, n] : injection) {
    out << (first ? "\n" : ",\n") << "    \"" << json_escape(kind)
        << "\": " << n;
    total += n;
    first = false;
  }
  if (!first) out << ",\n    \"total\": " << total << "\n  ";
  out << "},\n";
  // v2: quantiles pre-derived from the histogram bins, so downstream
  // readers (wehey_cli inspect, tools/trace_stats.py, dashboards) get
  // p50/p90/p99 without re-walking the bins themselves.
  out << "  \"percentiles\": {";
  first = true;
  if (metrics != nullptr) {
    for (const auto& [name, h] : metrics->histograms()) {
      if (h.count() == 0) continue;
      out << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
          << "\": {\"p50\": " << json_number(histogram_quantile(h, 0.50))
          << ", \"p90\": " << json_number(histogram_quantile(h, 0.90))
          << ", \"p99\": " << json_number(histogram_quantile(h, 0.99))
          << "}";
      first = false;
    }
  }
  out << (first ? "" : "\n  ") << "},\n";
  out << "  \"metrics\": ";
  if (metrics != nullptr) {
    out << metrics->to_json(2);
  } else {
    out << "{\"counters\": {}, \"gauges\": {}, \"histograms\": {}}";
  }
  out << "\n}\n";
  return out.str();
}

ReportMode report_mode_from_env() {
  const char* v = std::getenv("WEHEY_REPORT_MODE");
  if (v == nullptr) return ReportMode::kPerRun;
  const std::string mode(v);
  if (mode == "sweep") return ReportMode::kSweep;
  if (mode == "both") return ReportMode::kBoth;
  return ReportMode::kPerRun;
}

std::string report_path_from_env(const std::string& run_name) {
  if (const char* path = std::getenv("WEHEY_REPORT")) {
    if (path[0] != 0 && std::string(path) != "0") return path;
  }
  if (const char* dir = std::getenv("WEHEY_REPORT_DIR")) {
    if (dir[0] != 0) return std::string(dir) + "/" + run_name + ".report.json";
  }
  return {};
}

std::string sweep_path_from_env(const std::string& run_name) {
  if (const char* path = std::getenv("WEHEY_REPORT")) {
    if (path[0] != 0 && std::string(path) != "0") {
      // In pure sweep mode WEHEY_REPORT names the sweep file itself; in
      // "both" mode it names the per-run file, and the aggregate lands
      // next to it.
      if (report_mode_from_env() == ReportMode::kSweep) return path;
      return std::string(path) + ".sweep.json";
    }
  }
  if (const char* dir = std::getenv("WEHEY_REPORT_DIR")) {
    if (dir[0] != 0) return std::string(dir) + "/" + run_name + ".sweep.json";
  }
  return {};
}

bool report_wall_times() {
  const char* v = std::getenv("WEHEY_REPORT_WALL");
  return v != nullptr && v[0] != 0 && std::string(v) != "0";
}

bool write_report_file(const std::string& path, const std::string& json) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::size_t wrote = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  return wrote == json.size();
}

}  // namespace wehey::obs
