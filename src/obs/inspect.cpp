#include "obs/inspect.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>

#include "obs/aggregate.hpp"
#include "obs/checkpoint.hpp"
#include "obs/report.hpp"
#include "obs/runtime.hpp"

namespace wehey::obs {

// ------------------------------------------------------------- JSON parse

namespace {

/// Containers may nest at most this deep. The parser is recursive
/// descent, so unbounded nesting in a hostile/corrupt input would
/// otherwise translate directly into stack exhaustion; every document
/// the obs writers emit stays below a dozen levels.
constexpr int kMaxParseDepth = 64;

struct Parser {
  const char* p;
  const char* end;
  std::string error;
  int depth = 0;

  void skip_ws() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) {
      ++p;
    }
  }

  bool fail(const char* msg) {
    error = msg;
    return false;
  }

  bool parse_value(JsonValue& out) {
    skip_ws();
    if (p >= end) return fail("unexpected end of input");
    switch (*p) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"':
        out.type = JsonValue::Type::String;
        return parse_string(out.str);
      case 't':
        if (end - p >= 4 && std::strncmp(p, "true", 4) == 0) {
          out.type = JsonValue::Type::Bool;
          out.boolean = true;
          p += 4;
          return true;
        }
        return fail("bad literal");
      case 'f':
        if (end - p >= 5 && std::strncmp(p, "false", 5) == 0) {
          out.type = JsonValue::Type::Bool;
          out.boolean = false;
          p += 5;
          return true;
        }
        return fail("bad literal");
      case 'n':
        if (end - p >= 4 && std::strncmp(p, "null", 4) == 0) {
          out.type = JsonValue::Type::Null;
          p += 4;
          return true;
        }
        return fail("bad literal");
      default: return parse_number(out);
    }
  }

  bool parse_string(std::string& out) {
    ++p;  // opening quote
    out.clear();
    while (p < end && *p != '"') {
      if (*p == '\\') {
        if (p + 1 >= end) return fail("bad escape");
        ++p;
        switch (*p) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u':
            // Pass the escape through; the obs writers only emit \u00XX
            // for control characters, which never matter to the analyzer.
            if (end - p < 5) return fail("bad \\u escape");
            out += "\\u";
            out.append(p + 1, 4);
            p += 4;
            break;
          default: return fail("bad escape");
        }
        ++p;
      } else {
        out += *p++;
      }
    }
    if (p >= end) return fail("unterminated string");
    ++p;  // closing quote
    return true;
  }

  bool parse_number(JsonValue& out) {
    char* after = nullptr;
    const double v = std::strtod(p, &after);
    if (after == p) return fail("bad number");
    out.type = JsonValue::Type::Number;
    out.number = v;
    p = after;
    return true;
  }

  bool parse_array(JsonValue& out) {
    out.type = JsonValue::Type::Array;
    if (++depth > kMaxParseDepth) return fail("nesting too deep");
    ++p;
    skip_ws();
    if (p < end && *p == ']') {
      ++p;
      --depth;
      return true;
    }
    while (true) {
      out.array.emplace_back();
      if (!parse_value(out.array.back())) return false;
      skip_ws();
      if (p < end && *p == ',') {
        ++p;
        continue;
      }
      if (p < end && *p == ']') {
        ++p;
        --depth;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool parse_object(JsonValue& out) {
    out.type = JsonValue::Type::Object;
    if (++depth > kMaxParseDepth) return fail("nesting too deep");
    ++p;
    skip_ws();
    if (p < end && *p == '}') {
      ++p;
      --depth;
      return true;
    }
    while (true) {
      skip_ws();
      if (p >= end || *p != '"') return fail("expected object key");
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (p >= end || *p != ':') return fail("expected ':'");
      ++p;
      out.object.emplace_back(std::move(key), JsonValue{});
      if (!parse_value(out.object.back().second)) return false;
      skip_ws();
      if (p < end && *p == ',') {
        ++p;
        continue;
      }
      if (p < end && *p == '}') {
        ++p;
        --depth;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }
};

}  // namespace

const JsonValue* JsonValue::find(const std::string& key) const {
  if (type != Type::Object) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

bool json_parse(const std::string& text, JsonValue& out,
                std::string* error) {
  Parser parser{text.data(), text.data() + text.size(), {}};
  if (!parser.parse_value(out)) {
    if (error != nullptr) *error = parser.error;
    return false;
  }
  parser.skip_ws();
  if (parser.p != parser.end) {
    if (error != nullptr) *error = "trailing characters";
    return false;
  }
  return true;
}

bool read_file(const std::string& path, std::string& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fseek(f, 0, SEEK_END);
  const long len = std::ftell(f);
  std::rewind(f);
  out.resize(len > 0 ? static_cast<std::size_t>(len) : 0);
  const std::size_t got = std::fread(out.data(), 1, out.size(), f);
  std::fclose(f);
  out.resize(got);
  return true;
}

bool is_run_report(const JsonValue& doc) {
  const JsonValue* schema = doc.find("schema");
  return schema != nullptr && schema->type == JsonValue::Type::String &&
         schema->str.rfind("wehey.run_report.", 0) == 0;
}

bool is_chrome_trace(const JsonValue& doc) {
  const JsonValue* events = doc.find("traceEvents");
  return events != nullptr && events->type == JsonValue::Type::Array;
}

bool is_runtime_report(const JsonValue& doc) {
  const JsonValue* schema = doc.find("schema");
  return schema != nullptr && schema->type == JsonValue::Type::String &&
         schema->str.rfind(kRuntimeReportSchemaPrefix, 0) == 0;
}

// ---------------------------------------------------------- report render

namespace {

/// histogram_quantile (metrics.cpp) re-implemented on the JSON shape, so
/// v1 reports — which have bins but no "percentiles" section — inspect
/// identically to v2.
double bins_quantile(const JsonValue& h, double q) {
  const JsonValue* bins = h.find("bins");
  const double count = h.find("count") ? h.find("count")->num_or(0) : 0;
  if (bins == nullptr || bins->type != JsonValue::Type::Array || count <= 0) {
    return 0.0;
  }
  const double lo = h.find("lo") ? h.find("lo")->num_or(0) : 0;
  const double hi = h.find("hi") ? h.find("hi")->num_or(1) : 1;
  const double hmin = h.find("min") ? h.find("min")->num_or(0) : 0;
  const double hmax = h.find("max") ? h.find("max")->num_or(0) : 0;
  const std::size_t n = bins->array.size();
  if (n < 3) return hmax;
  const double width = (hi - lo) / static_cast<double>(n - 2);
  const double target = std::clamp(q, 0.0, 1.0) * count;
  double cum = 0.0;
  double value = hmax;
  for (std::size_t i = 0; i < n; ++i) {
    const double b = bins->array[i].num_or(0);
    if (b <= 0) continue;
    if (cum + b >= target) {
      if (i == 0) {
        value = hmin;
      } else if (i == n - 1) {
        value = hmax;
      } else {
        const double frac = (target - cum) / b;
        value = lo + (static_cast<double>(i - 1) + frac) * width;
      }
      break;
    }
    cum += b;
  }
  return std::clamp(value, hmin, hmax);
}

const char* str_or(const JsonValue& doc, const char* key,
                   const char* fallback = "") {
  const JsonValue* v = doc.find(key);
  return v != nullptr && v->type == JsonValue::Type::String ? v->str.c_str()
                                                            : fallback;
}

void print_rule(std::FILE* out, const char* title) {
  std::fprintf(out, "\n%s\n", title);
  for (const char* c = title; *c != 0; ++c) std::fputc('-', out);
  std::fputc('\n', out);
}

/// Counters whose names start with `prefix`, in registry (sorted) order.
std::vector<std::pair<std::string, double>> counters_with_prefix(
    const JsonValue& counters, const std::string& prefix) {
  std::vector<std::pair<std::string, double>> out;
  if (counters.type != JsonValue::Type::Object) return out;
  for (const auto& [name, v] : counters.object) {
    if (name.rfind(prefix, 0) == 0) out.emplace_back(name, v.num_or(0));
  }
  return out;
}

}  // namespace

void render_report(const JsonValue& doc, std::FILE* out) {
  std::fprintf(out, "run report  %s\n", str_or(doc, "schema"));
  std::fprintf(out, "  run        %s\n", str_or(doc, "run"));
  const JsonValue* seed = doc.find("seed");
  if (seed != nullptr) {
    std::fprintf(out, "  seed       %.0f\n", seed->num_or(0));
  }
  const char* plan = str_or(doc, "fault_plan");
  std::fprintf(out, "  fault plan %s\n", plan[0] != 0 ? plan : "(none)");
  std::fprintf(out, "  verdict    %s\n", str_or(doc, "verdict"));
  const char* reason = str_or(doc, "reason");
  if (reason[0] != 0) std::fprintf(out, "  reason     %s\n", reason);

  // v4 verdict provenance. Only rendered when the section exists, so
  // v1-v3 reports inspect byte-identically to before.
  const JsonValue* decision = doc.find("decision");
  if (decision != nullptr && decision->type == JsonValue::Type::Object) {
    print_rule(out, "decision (margin < 0 would flip; |margin| ~ 0 = knife-edge)");
    const JsonValue* evaluated = decision->find("evaluated");
    std::fprintf(out, "  evaluated      %s\n",
                 evaluated != nullptr && evaluated->boolean ? "yes"
                                                           : "no (pre-analysis)");
    if (const JsonValue* margin = decision->find("margin")) {
      std::fprintf(out, "  verdict margin %.4g\n", margin->num_or(0));
    }
    const JsonValue* detectors = decision->find("detectors");
    if (detectors != nullptr && !detectors->array.empty()) {
      std::fprintf(out, "  %-18s %11s %11s %11s %8s %6s\n", "detector",
                   "statistic", "threshold", "margin", "outcome", "valid");
      for (const auto& d : detectors->array) {
        const auto field = [&d](const char* key) {
          const JsonValue* v = d.find(key);
          return v != nullptr ? v->num_or(0) : 0.0;
        };
        const JsonValue* outcome = d.find("outcome");
        const JsonValue* valid = d.find("valid");
        std::fprintf(out, "  %-18s %11.4g %11.4g %11.4g %8s %6s",
                     str_or(d, "name"), field("statistic"), field("threshold"),
                     field("margin"),
                     outcome != nullptr && outcome->boolean ? "fired" : "no",
                     valid != nullptr && valid->boolean ? "yes" : "NO");
        if (d.find("rho") != nullptr) {
          std::fprintf(out, "  rho=%.4g sigma=%.4g ms", field("rho"),
                       field("sigma_ms"));
        }
        std::fputc('\n', out);
      }
    }
    const JsonValue* agg = decision->find("aggregation");
    if (agg != nullptr && agg->type == JsonValue::Type::Object) {
      const auto field = [&agg](const char* key) {
        const JsonValue* v = agg->find(key);
        return v != nullptr ? v->num_or(0) : 0.0;
      };
      const JsonValue* outcome = agg->find("outcome");
      std::fprintf(out,
                   "  aggregation    %.0f/%.0f sizes correlated (%.0f valid) "
                   "vs threshold %.4g -> %s (margin %.4g)\n",
                   field("sizes_correlated"), field("sizes_tested"),
                   field("sizes_valid"), field("threshold"),
                   outcome != nullptr && outcome->boolean ? "common bottleneck"
                                                          : "no",
                   field("margin"));
    }
    const JsonValue* degradations = decision->find("degradations");
    if (degradations != nullptr && !degradations->array.empty()) {
      std::fprintf(out, "  degradations  ");
      for (const auto& deg : degradations->array) {
        std::fprintf(out, " %s", deg.str.c_str());
      }
      std::fputc('\n', out);
    }
  }

  // v5 ground truth + audit. Both sections are absent-by-default, so
  // pre-v5 reports inspect byte-identically to before.
  const JsonValue* truth = doc.find("ground_truth");
  if (truth != nullptr && truth->type == JsonValue::Type::Object) {
    print_rule(out, "audit (verdict vs configured ground truth)");
    const auto flag = [&truth](const char* key) {
      const JsonValue* v = truth->find(key);
      return v != nullptr && v->boolean;
    };
    std::fprintf(out, "  truth          %s",
                 flag("differentiated") ? str_or(*truth, "mechanism")
                                        : "no differentiation");
    if (flag("differentiated")) {
      std::fprintf(out, " @ %s (%s target area)",
                   str_or(*truth, "placement"),
                   flag("within_target_area") ? "within" : "outside");
      if (const JsonValue* rate = truth->find("rate_bps");
          rate != nullptr && rate->num_or(0) > 0) {
        std::fprintf(out, ", rate %.4g bps", rate->num_or(0));
      }
      if (const JsonValue* act = truth->find("activation_bytes");
          act != nullptr && act->num_or(0) > 0) {
        std::fprintf(out, ", activates after %.0f bytes", act->num_or(0));
      }
    }
    if (flag("sanity_check")) std::fprintf(out, "  [sanity check]");
    std::fputc('\n', out);
    const JsonValue* audit = doc.find("audit");
    if (audit != nullptr && audit->type == JsonValue::Type::Object) {
      const auto aflag = [&audit](const char* key) {
        const JsonValue* v = audit->find(key);
        return v != nullptr && v->boolean;
      };
      std::fprintf(out, "  expected       %s\n",
                   aflag("expected_positive") ? "positive" : "negative");
      std::fprintf(out, "  observed       %s\n",
                   aflag("observed_positive") ? "positive" : "negative");
      const char* reason = str_or(*audit, "mismatch_reason");
      std::fprintf(out, "  classification %s", str_or(*audit, "classification"));
      if (reason[0] != 0) std::fprintf(out, "  (%s)", reason);
      std::fputc('\n', out);
    }
  }

  const JsonValue* stages = doc.find("stages");
  if (stages != nullptr && !stages->array.empty()) {
    print_rule(out, "stages (sim time)");
    for (const auto& st : stages->array) {
      const JsonValue* ms = st.find("sim_ms");
      const JsonValue* wall = st.find("wall_ms");
      std::fprintf(out, "  %-24s %12.3f ms", str_or(st, "name"),
                   ms != nullptr ? ms->num_or(0) : 0.0);
      if (wall != nullptr) {
        std::fprintf(out, "  (wall %.3f ms)", wall->num_or(0));
      }
      std::fputc('\n', out);
    }
  }

  const JsonValue* metrics = doc.find("metrics");
  const JsonValue* histograms =
      metrics != nullptr ? metrics->find("histograms") : nullptr;
  const JsonValue* counters =
      metrics != nullptr ? metrics->find("counters") : nullptr;
  const JsonValue* percentiles = doc.find("percentiles");

  if (histograms != nullptr && !histograms->object.empty()) {
    print_rule(out, "latency percentiles (from histogram bins)");
    std::fprintf(out, "  %-28s %10s %10s %10s %10s %10s\n", "histogram",
                 "count", "p50", "p90", "p99", "max");
    for (const auto& [name, h] : histograms->object) {
      const double count = h.find("count") ? h.find("count")->num_or(0) : 0;
      if (count <= 0) continue;
      double p50, p90, p99;
      const JsonValue* pre =
          percentiles != nullptr ? percentiles->find(name) : nullptr;
      if (pre != nullptr) {
        p50 = pre->find("p50") ? pre->find("p50")->num_or(0) : 0;
        p90 = pre->find("p90") ? pre->find("p90")->num_or(0) : 0;
        p99 = pre->find("p99") ? pre->find("p99")->num_or(0) : 0;
      } else {
        p50 = bins_quantile(h, 0.50);
        p90 = bins_quantile(h, 0.90);
        p99 = bins_quantile(h, 0.99);
      }
      const double hmax = h.find("max") ? h.find("max")->num_or(0) : 0;
      std::fprintf(out, "  %-28s %10.0f %10.4g %10.4g %10.4g %10.4g\n",
                   name.c_str(), count, p50, p90, p99, hmax);
    }
  }

  if (counters != nullptr) {
    const auto queue_drops = counters_with_prefix(*counters, "queue.");
    if (!queue_drops.empty()) {
      print_rule(out, "queue drops by reason");
      for (const auto& [name, v] : queue_drops) {
        if (name.find(".drop.") == std::string::npos) continue;
        std::fprintf(out, "  %-28s %10.0f\n", name.c_str(), v);
      }
    }
    const auto flows = counters_with_prefix(*counters, "tcp.");
    if (!flows.empty()) {
      print_rule(out, "per-flow RTT / loss");
      for (const auto& [name, v] : flows) {
        std::fprintf(out, "  %-28s %10.0f\n", name.c_str(), v);
      }
      if (histograms != nullptr) {
        const JsonValue* srtt = histograms->find("tcp.flow_srtt_ms");
        if (srtt != nullptr && srtt->find("count") != nullptr &&
            srtt->find("count")->num_or(0) > 0) {
          std::fprintf(out,
                       "  flow srtt: p50 %.4g ms, p90 %.4g ms, p99 %.4g "
                       "ms (over %.0f flow snapshots)\n",
                       bins_quantile(*srtt, 0.5), bins_quantile(*srtt, 0.9),
                       bins_quantile(*srtt, 0.99),
                       srtt->find("count")->num_or(0));
        }
      }
    }
    const auto links = counters_with_prefix(*counters, "net.");
    if (!links.empty()) {
      print_rule(out, "links");
      for (const auto& [name, v] : links) {
        std::fprintf(out, "  %-28s %10.0f\n", name.c_str(), v);
      }
    }
    // Hybrid fluid/packet background (WEHEY_BG_MODE=fluid). The section
    // only exists when the run produced fluid counters, so pre-fluid
    // reports render byte-identically.
    const auto fluid = counters_with_prefix(*counters, "fluid.");
    if (!fluid.empty()) {
      print_rule(out, "fluid background");
      for (const auto& [name, v] : fluid) {
        std::fprintf(out, "  %-28s %10.0f\n", name.c_str(), v);
      }
    }
  }

  const JsonValue* profile = doc.find("profile");
  if (profile != nullptr && !profile->object.empty()) {
    print_rule(out, "stage profile (sim time, self = minus children)");
    std::fprintf(out, "  %-24s %6s %12s %12s %12s %12s\n", "stage", "count",
                 "sim ms", "self ms", "wall ms", "self wall");
    for (const auto& [name, e] : profile->object) {
      const JsonValue* wall = e.find("wall_ms");
      const JsonValue* self_wall = e.find("self_wall_ms");
      std::fprintf(out, "  %-24s %6.0f %12.3f %12.3f",
                   name.c_str(),
                   e.find("count") ? e.find("count")->num_or(0) : 0.0,
                   e.find("sim_ms") ? e.find("sim_ms")->num_or(0) : 0.0,
                   e.find("self_sim_ms") ? e.find("self_sim_ms")->num_or(0)
                                         : 0.0);
      if (wall != nullptr) {
        std::fprintf(out, " %12.3f", wall->num_or(0));
      } else {
        std::fprintf(out, " %12s", "-");
      }
      if (self_wall != nullptr) {
        std::fprintf(out, " %12.3f", self_wall->num_or(0));
      } else {
        std::fprintf(out, " %12s", "-");
      }
      std::fputc('\n', out);
    }
  }

  const JsonValue* injection = doc.find("injection");
  if (injection != nullptr && !injection->object.empty()) {
    print_rule(out, "fault injection");
    for (const auto& [kind, n] : injection->object) {
      std::fprintf(out, "  %-28s %10.0f\n", kind.c_str(), n.num_or(0));
    }
  }
}

// ----------------------------------------------------------- sweep render

namespace {

/// One row of a {"count","min","max","mean","sum","p50","p90","p99"}
/// summary object (sweep-report "values"/"stages" sections).
void print_summary_row(std::FILE* out, const std::string& name,
                       const JsonValue& s, int name_width) {
  const auto field = [&s](const char* key) {
    const JsonValue* v = s.find(key);
    return v != nullptr ? v->num_or(0) : 0.0;
  };
  std::fprintf(out, "  %-*s %6.0f %11.4g %11.4g %11.4g %11.4g %11.4g\n",
               name_width, name.c_str(), field("count"), field("min"),
               field("mean"), field("p50"), field("p90"), field("max"));
}

void print_summary_header(std::FILE* out, const char* what, int name_width) {
  std::fprintf(out, "  %-*s %6s %11s %11s %11s %11s %11s\n", name_width,
               what, "count", "min", "mean", "p50", "p90", "max");
}

void print_tally(std::FILE* out, const JsonValue& doc, const char* key,
                 const char* title) {
  const JsonValue* tally = doc.find(key);
  if (tally == nullptr || tally->object.empty()) return;
  print_rule(out, title);
  for (const auto& [name, n] : tally->object) {
    std::fprintf(out, "  %-28s %10.0f\n", name.c_str(), n.num_or(0));
  }
}

}  // namespace

void render_sweep(const JsonValue& doc, std::FILE* out) {
  std::fprintf(out, "sweep report  %s\n", str_or(doc, "schema"));
  std::fprintf(out, "  sweep      %s\n", str_or(doc, "sweep"));
  const JsonValue* runs = doc.find("runs");
  std::fprintf(out, "  runs       %.0f\n",
               runs != nullptr ? runs->num_or(0) : 0.0);

  print_tally(out, doc, "verdicts", "verdicts");
  print_tally(out, doc, "fault_plans", "fault plans");
  print_tally(out, doc, "reasons", "reasons");
  print_tally(out, doc, "injection", "fault injection (all runs)");

  const JsonValue* stages = doc.find("stages");
  if (stages != nullptr && !stages->object.empty()) {
    print_rule(out, "stages (per-run sim ms)");
    print_summary_header(out, "stage", 24);
    for (const auto& [name, s] : stages->object) {
      print_summary_row(out, name, s, 24);
    }
  }

  const JsonValue* profile = doc.find("profile");
  if (profile != nullptr && !profile->object.empty()) {
    print_rule(out, "stage profile (self sim ms across runs)");
    std::fprintf(out, "  %-24s %6s %11s %11s %11s %11s\n", "stage", "spans",
                 "self mean", "self p50", "self p90", "self max");
    for (const auto& [name, e] : profile->object) {
      const JsonValue* self = e.find("self_sim_ms");
      const auto field = [&self](const char* key) {
        const JsonValue* v = self != nullptr ? self->find(key) : nullptr;
        return v != nullptr ? v->num_or(0) : 0.0;
      };
      std::fprintf(out, "  %-24s %6.0f %11.4g %11.4g %11.4g %11.4g\n",
                   name.c_str(),
                   e.find("spans") ? e.find("spans")->num_or(0) : 0.0,
                   field("mean"), field("p50"), field("p90"), field("max"));
    }
  }

  const JsonValue* values = doc.find("values");
  if (values != nullptr && !values->object.empty()) {
    print_rule(out, "values (across runs)");
    print_summary_header(out, "value", 28);
    for (const auto& [name, s] : values->object) {
      print_summary_row(out, name, s, 28);
    }
  }

  const JsonValue* cells = doc.find("cells");
  if (cells != nullptr && !cells->object.empty()) {
    print_rule(out, "grid cells");
    for (const auto& [name, cell] : cells->object) {
      const JsonValue* cell_runs = cell.find("runs");
      std::fprintf(out, "  %-24s %6.0f runs", name.c_str(),
                   cell_runs != nullptr ? cell_runs->num_or(0) : 0.0);
      const JsonValue* verdicts = cell.find("verdicts");
      if (verdicts != nullptr) {
        for (const auto& [verdict, n] : verdicts->object) {
          std::fprintf(out, "  %s=%.0f", verdict.c_str(), n.num_or(0));
        }
      }
      std::fputc('\n', out);
    }
  }

  // Quarantined cells: repeated budget-exhausted (crash-equivalent) runs.
  const JsonValue* quarantine = doc.find("quarantine");
  const JsonValue* qcells =
      quarantine != nullptr ? quarantine->find("cells") : nullptr;
  if (qcells != nullptr && !qcells->object.empty()) {
    const JsonValue* threshold = quarantine->find("threshold");
    char title[80];
    std::snprintf(title, sizeof(title),
                  "QUARANTINED cells (>= %.0f budget-exhausted runs)",
                  threshold != nullptr ? threshold->num_or(0) : 0.0);
    print_rule(out, title);
    for (const auto& [name, q] : qcells->object) {
      const JsonValue* poisoned = q.find("poisoned_runs");
      std::fprintf(out, "  %-24s %6.0f poisoned", name.c_str(),
                   poisoned != nullptr ? poisoned->num_or(0) : 0.0);
      const JsonValue* reasons = q.find("reasons");
      if (reasons != nullptr) {
        for (const auto& [reason, n] : reasons->object) {
          std::fprintf(out, "  %s=%.0f", reason.c_str(), n.num_or(0));
        }
      }
      std::fputc('\n', out);
    }
  }

  // Knife-edge cells: minimum |decision margin| under the gate threshold.
  // Absent on pre-v4 sweeps, which therefore render unchanged.
  const JsonValue* knife = doc.find("knife_edge");
  const JsonValue* kcells = knife != nullptr ? knife->find("cells") : nullptr;
  if (kcells != nullptr) {
    const JsonValue* threshold = knife->find("margin_threshold");
    char title[80];
    std::snprintf(title, sizeof(title),
                  "KNIFE-EDGE cells (min |margin| < %.4g)",
                  threshold != nullptr ? threshold->num_or(0) : 0.0);
    print_rule(out, title);
    if (kcells->object.empty()) {
      std::fprintf(out, "  (none — every cell's verdicts are stable)\n");
    }
    for (const auto& [name, k] : kcells->object) {
      const JsonValue* min_margin = k.find("min_margin");
      const JsonValue* below = k.find("runs_below");
      std::fprintf(out, "  %-24s min margin %10.4g  (%.0f runs below)\n",
                   name.c_str(),
                   min_margin != nullptr ? min_margin->num_or(0) : 0.0,
                   below != nullptr ? below->num_or(0) : 0.0);
    }
  }

  // Verdict audit: confusion matrices vs the configured ground truth.
  // Absent on pre-v5 sweeps, which therefore render unchanged.
  const JsonValue* audit = doc.find("audit");
  if (audit != nullptr && audit->type == JsonValue::Type::Object) {
    print_rule(out, "AUDIT (verdict vs ground truth; * = knife-edge cell)");
    std::fprintf(out, "  %-24s %5s %5s %5s %5s %5s %9s %9s %9s\n", "cell",
                 "tp", "fp", "fn", "tn", "skip", "accuracy", "precision",
                 "recall");
    const auto print_matrix = [out](const std::string& label,
                                    const JsonValue& m, bool knife) {
      const auto field = [&m](const char* key) {
        const JsonValue* v = m.find(key);
        return v != nullptr ? v->num_or(0) : 0.0;
      };
      std::fprintf(out, "  %-24s %5.0f %5.0f %5.0f %5.0f %5.0f %9.4g %9.4g %9.4g\n",
                   (label + (knife ? " *" : "")).c_str(), field("tp"),
                   field("fp"), field("fn"), field("tn"), field("skipped"),
                   field("accuracy"), field("precision"), field("recall"));
    };
    if (const JsonValue* acells = audit->find("cells");
        acells != nullptr && acells->type == JsonValue::Type::Object) {
      for (const auto& [name, m] : acells->object) {
        const JsonValue* k = m.find("knife_edge");
        print_matrix(name, m, k != nullptr && k->boolean);
      }
    }
    if (const JsonValue* grid = audit->find("grid");
        grid != nullptr && grid->type == JsonValue::Type::Object) {
      print_matrix("(grid)", *grid, false);
      if (const JsonValue* reasons = grid->find("mismatch_reasons");
          reasons != nullptr && !reasons->object.empty()) {
        std::fprintf(out, "  mismatches:");
        for (const auto& [reason, n] : reasons->object) {
          std::fprintf(out, "  %s=%.0f", reason.c_str(), n.num_or(0));
        }
        std::fputc('\n', out);
      }
    }
  }

  const JsonValue* percentiles = doc.find("percentiles");
  if (percentiles != nullptr && !percentiles->object.empty()) {
    print_rule(out, "histogram percentiles (merged bins)");
    std::fprintf(out, "  %-28s %11s %11s %11s\n", "histogram", "p50", "p90",
                 "p99");
    for (const auto& [name, p] : percentiles->object) {
      const auto field = [&p](const char* key) {
        const JsonValue* v = p.find(key);
        return v != nullptr ? v->num_or(0) : 0.0;
      };
      std::fprintf(out, "  %-28s %11.4g %11.4g %11.4g\n", name.c_str(),
                   field("p50"), field("p90"), field("p99"));
    }
  }

  // Fluid-background totals across the sweep (WEHEY_BG_MODE=fluid).
  // Absent on packet-mode sweeps, so pre-fluid reports are unchanged.
  const JsonValue* metrics = doc.find("metrics");
  const JsonValue* counters =
      metrics != nullptr ? metrics->find("counters") : nullptr;
  if (counters != nullptr) {
    const auto fluid = counters_with_prefix(*counters, "fluid.");
    if (!fluid.empty()) {
      print_rule(out, "fluid background (all runs)");
      for (const auto& [name, v] : fluid) {
        std::fprintf(out, "  %-28s %10.0f\n", name.c_str(), v);
      }
    }
  }
}

// ----------------------------------------------------------- trace render

void render_trace(const JsonValue& doc, std::FILE* out) {
  const JsonValue* events = doc.find("traceEvents");
  if (events == nullptr) return;

  struct SpanStats {
    std::vector<double> durs_us;
    double total_us = 0;
  };
  std::map<std::string, SpanStats> spans;
  std::map<std::string, std::size_t> instants;
  struct CounterStats {
    std::size_t samples = 0;
    double min = 0, max = 0, last = 0;
  };
  std::map<std::string, CounterStats> counters;
  std::size_t total = 0;

  for (const auto& ev : events->array) {
    const char* ph = str_or(ev, "ph");
    const char* name = str_or(ev, "name");
    if (std::strcmp(ph, "M") == 0) continue;  // metadata
    ++total;
    if (std::strcmp(ph, "X") == 0) {
      const double dur = ev.find("dur") ? ev.find("dur")->num_or(0) : 0;
      auto& s = spans[name];
      s.durs_us.push_back(dur);
      s.total_us += dur;
    } else if (std::strcmp(ph, "C") == 0) {
      const JsonValue* args = ev.find("args");
      const double v = args != nullptr && args->find("value") != nullptr
                           ? args->find("value")->num_or(0)
                           : 0;
      auto& c = counters[name];
      if (c.samples == 0 || v < c.min) c.min = v;
      if (c.samples == 0 || v > c.max) c.max = v;
      c.last = v;
      ++c.samples;
    } else {
      ++instants[name];
    }
  }

  std::fprintf(out, "trace  %zu events\n", total);

  if (!spans.empty()) {
    print_rule(out, "stage latency (span durations, sim ms)");
    std::fprintf(out, "  %-28s %8s %10s %10s %10s %10s\n", "span", "count",
                 "p50", "p90", "p99", "total");
    for (auto& [name, s] : spans) {
      std::sort(s.durs_us.begin(), s.durs_us.end());
      const auto pct = [&s](double q) {
        const std::size_t n = s.durs_us.size();
        std::size_t idx = static_cast<std::size_t>(q * (n - 1) + 0.5);
        if (idx >= n) idx = n - 1;
        return s.durs_us[idx] / 1000.0;  // us -> ms
      };
      std::fprintf(out, "  %-28s %8zu %10.4g %10.4g %10.4g %10.4g\n",
                   name.c_str(), s.durs_us.size(), pct(0.5), pct(0.9),
                   pct(0.99), s.total_us / 1000.0);
    }
  }

  if (!counters.empty()) {
    print_rule(out, "counter series");
    std::fprintf(out, "  %-28s %8s %10s %10s %10s\n", "series", "samples",
                 "min", "max", "last");
    for (const auto& [name, c] : counters) {
      std::fprintf(out, "  %-28s %8zu %10.4g %10.4g %10.4g\n", name.c_str(),
                   c.samples, c.min, c.max, c.last);
    }
  }

  if (!instants.empty()) {
    print_rule(out, "instant events");
    for (const auto& [name, n] : instants) {
      std::fprintf(out, "  %-28s %8zu\n", name.c_str(), n);
    }
  }
}

namespace {

/// Render a wehey.sweep_checkpoint.v1 JSONL journal: completed-run count
/// plus per-cell verdict tallies pulled from the embedded reports. False
/// when `path` does not load as a non-empty journal.
bool render_checkpoint_journal(const std::string& path, std::FILE* out) {
  CheckpointJournal journal;
  if (!CheckpointJournal::load(path, journal) || journal.empty()) {
    return false;
  }
  std::fprintf(out, "checkpoint journal  %s\n", kSweepCheckpointSchema);
  std::fprintf(out, "  sweep      %s\n", journal.sweep().c_str());
  std::fprintf(out, "  completed  %zu runs\n", journal.size());
  struct CellTally {
    std::size_t runs = 0;
    std::map<std::string, std::size_t> verdicts;
  };
  std::map<std::string, CellTally> cells;
  for (const auto& entry : journal.entries()) {
    auto& cell = cells[entry.cell.empty() ? "(none)" : entry.cell];
    ++cell.runs;
    JsonValue doc;
    if (json_parse(entry.report_json, doc)) {
      const JsonValue* verdict = doc.find("verdict");
      if (verdict != nullptr) ++cell.verdicts[verdict->str];
    }
  }
  print_rule(out, "cells (completed runs)");
  for (const auto& [name, cell] : cells) {
    std::fprintf(out, "  %-24s %6zu runs", name.c_str(), cell.runs);
    for (const auto& [verdict, n] : cell.verdicts) {
      std::fprintf(out, "  %s=%zu", verdict.c_str(), n);
    }
    std::fputc('\n', out);
  }
  return true;
}

}  // namespace

void render_runtime(const JsonValue& doc, std::FILE* out) {
  const auto num = [](const JsonValue* obj, const char* key) -> double {
    if (obj == nullptr) return 0.0;
    const JsonValue* v = obj->find(key);
    return v != nullptr ? v->num_or(0.0) : 0.0;
  };
  std::fprintf(out, "runtime report  %s\n", str_or(doc, "schema"));
  std::fprintf(out, "  run          %s\n", str_or(doc, "run"));
  std::fprintf(out, "  wall         %.3f s\n", num(&doc, "wall_seconds"));
  const JsonValue* threads = doc.find("threads");
  if (threads != nullptr) {
    const JsonValue* over = threads->find("oversubscribed");
    std::fprintf(out,
                 "  threads      configured=%.0f hardware=%.0f "
                 "contexts=%.0f%s\n",
                 num(threads, "configured"), num(threads, "hardware"),
                 num(threads, "contexts"),
                 over != nullptr && over->boolean ? " OVERSUBSCRIBED" : "");
  }

  const JsonValue* workers = doc.find("workers");
  if (workers != nullptr && workers->type == JsonValue::Type::Array &&
      !workers->array.empty()) {
    print_rule(out, "workers (wall-clock; busy = running chunks)");
    std::fprintf(out, "  %3s  %-6s  %10s  %10s  %10s  %8s  %8s\n", "id",
                 "kind", "busy_ms", "idle_ms", "wait_ms", "chunks", "tasks");
    for (const JsonValue& w : workers->array) {
      std::fprintf(out, "  %3.0f  %-6s  %10.1f  %10.1f  %10.1f  %8.0f  %8.0f\n",
                   num(&w, "id"), str_or(w, "kind"), num(&w, "busy_ms"),
                   num(&w, "idle_ms"), num(&w, "wait_ms"), num(&w, "chunks"),
                   num(&w, "tasks"));
    }
  }

  const JsonValue* sched = doc.find("scheduler");
  if (sched != nullptr) {
    print_rule(out, "scheduler");
    std::fprintf(out, "  jobs                 %.0f\n", num(sched, "jobs"));
    std::fprintf(out, "  tasks                %.0f\n", num(sched, "tasks"));
    std::fprintf(out, "  queue high-water     %.0f\n",
                 num(sched, "queue_depth_high_water"));
    std::fprintf(out, "  drain waits          %.0f\n",
                 num(sched, "drain_waits"));
    std::fprintf(out, "  parallel efficiency  %.3f\n",
                 num(sched, "parallel_efficiency"));
    std::fprintf(out, "  worker imbalance     %.3f\n",
                 num(sched, "worker_imbalance"));
    std::fprintf(out, "  wait fraction        %.3f\n",
                 num(sched, "wait_fraction"));
    std::fprintf(out, "  idle fraction        %.3f\n",
                 num(sched, "idle_fraction"));
    const JsonValue* lat = sched->find("submit_to_start_us");
    if (lat != nullptr && num(lat, "count") > 0) {
      std::fprintf(out,
                   "  submit-to-start      p50=%.1fus p90=%.1fus p99=%.1fus "
                   "(n=%.0f)\n",
                   bins_quantile(*lat, 0.50), bins_quantile(*lat, 0.90),
                   bins_quantile(*lat, 0.99), num(lat, "count"));
    }
  }

  const JsonValue* trials = doc.find("trials");
  if (trials != nullptr) {
    print_rule(out, "trials");
    std::fprintf(out, "  count        %.0f (supervised %.0f)\n",
                 num(trials, "count"), num(trials, "supervised"));
    const JsonValue* wall = trials->find("wall_ms");
    if (wall != nullptr && num(wall, "count") > 0) {
      std::fprintf(out,
                   "  wall         p50=%.1fms p90=%.1fms p99=%.1fms "
                   "max=%.1fms\n",
                   bins_quantile(*wall, 0.50), bins_quantile(*wall, 0.90),
                   bins_quantile(*wall, 0.99), num(wall, "max"));
    }
  }

  const JsonValue* process = doc.find("process");
  if (process != nullptr) {
    print_rule(out, "process");
    std::fprintf(out, "  rss peak     %.0f KiB\n",
                 num(process, "rss_peak_kb"));
    std::fprintf(out, "  event heap   %.0f chunks, %.0f bytes\n",
                 num(process, "event_heap_chunks"),
                 num(process, "event_heap_bytes"));
  }
}

bool inspect_file(const std::string& path, std::FILE* out) {
  std::string text;
  if (!read_file(path, text)) {
    std::fprintf(stderr, "inspect: cannot read %s\n", path.c_str());
    return false;
  }
  JsonValue doc;
  std::string error;
  if (!json_parse(text, doc, &error)) {
    // Not one JSON document — maybe a JSONL checkpoint journal.
    if (render_checkpoint_journal(path, out)) return true;
    std::fprintf(stderr, "inspect: %s: parse error: %s\n", path.c_str(),
                 error.c_str());
    return false;
  }
  if (is_run_report(doc)) {
    render_report(doc, out);
    return true;
  }
  if (is_sweep_report(doc)) {
    render_sweep(doc, out);
    return true;
  }
  if (is_chrome_trace(doc)) {
    render_trace(doc, out);
    return true;
  }
  if (is_runtime_report(doc)) {
    render_runtime(doc, out);
    return true;
  }
  // A one-line journal parses as a single checkpoint entry.
  const JsonValue* schema = doc.find("schema");
  if (schema != nullptr &&
      schema->str.rfind(kSweepCheckpointSchemaPrefix, 0) == 0 &&
      render_checkpoint_journal(path, out)) {
    return true;
  }
  std::fprintf(stderr,
               "inspect: %s: neither a wehey report (run, sweep or "
               "checkpoint journal) nor a chrome trace\n",
               path.c_str());
  return false;
}

}  // namespace wehey::obs
