#include "obs/checkpoint.hpp"

#include <cstdlib>
#include <sstream>

#include "obs/inspect.hpp"
#include "obs/report.hpp"
#include "obs/timeline.hpp"

namespace wehey::obs {

bool CheckpointWriter::open(const std::string& path,
                            const std::string& sweep) {
  close();
  // A kill mid-append leaves a torn final line (no trailing newline).
  // The loader drops it; drop it here too, or the next append would be
  // glued onto the fragment and corrupt a later resume's journal.
  std::string text;
  if (read_file(path, text) && !text.empty() && text.back() != '\n') {
    const std::size_t keep = text.find_last_of('\n');
    const std::size_t len = keep == std::string::npos ? 0 : keep + 1;
    if (std::FILE* trim = std::fopen(path.c_str(), "wb")) {
      if (len > 0) std::fwrite(text.data(), 1, len, trim);
      std::fclose(trim);
    }
  }
  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) return false;
  sweep_ = sweep;
  return true;
}

void CheckpointWriter::append(const CheckpointEntry& entry) {
  if (file_ == nullptr) return;
  std::ostringstream line;
  line << "{\"schema\": \"" << kSweepCheckpointSchema << "\", \"sweep\": \""
       << json_escape(sweep_) << "\", \"run\": \"" << json_escape(entry.run)
       << "\", \"cell\": \"" << json_escape(entry.cell)
       << "\", \"seed\": " << entry.seed << ", \"index\": " << entry.index
       << ", \"report\": \"" << json_escape(entry.report_json) << "\"}\n";
  const std::string text = line.str();
  std::fwrite(text.data(), 1, text.size(), file_);
  // One flush per run: a kill -9 loses at most the line being written,
  // which the loader drops as a torn trailing line.
  std::fflush(file_);
}

void CheckpointWriter::close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

bool CheckpointJournal::load(const std::string& path, CheckpointJournal& out,
                             std::string* error) {
  out = CheckpointJournal{};
  std::string text;
  if (!read_file(path, text)) return true;  // no journal yet: empty resume
  std::size_t pos = 0;
  std::size_t line_no = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    const bool last = eol == std::string::npos;
    const std::string line =
        text.substr(pos, last ? std::string::npos : eol - pos);
    pos = last ? text.size() : eol + 1;
    ++line_no;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    JsonValue doc;
    std::string parse_error;
    const JsonValue* schema = nullptr;
    const JsonValue* run = nullptr;
    const JsonValue* report = nullptr;
    const bool ok = json_parse(line, doc, &parse_error) &&
                    (schema = doc.find("schema")) != nullptr &&
                    schema->type == JsonValue::Type::String &&
                    schema->str.rfind(kSweepCheckpointSchemaPrefix, 0) == 0 &&
                    (run = doc.find("run")) != nullptr &&
                    run->type == JsonValue::Type::String &&
                    (report = doc.find("report")) != nullptr &&
                    report->type == JsonValue::Type::String;
    if (!ok) {
      // The interrupted append leaves a torn final line; anything after a
      // flushed bad line is unreachable by construction, so stop either
      // way and only flag mid-file corruption.
      const bool trailing =
          text.find_first_not_of(" \t\r\n", pos) == std::string::npos;
      if (trailing) return true;
      if (error != nullptr) {
        *error = path + ":" + std::to_string(line_no) +
                 ": malformed checkpoint line (" +
                 (parse_error.empty() ? "missing fields" : parse_error) + ")";
      }
      return false;
    }
    CheckpointEntry entry;
    entry.run = run->str;
    if (const JsonValue* cell = doc.find("cell")) entry.cell = cell->str;
    if (const JsonValue* seed = doc.find("seed")) {
      entry.seed = static_cast<std::uint64_t>(seed->num_or(0.0));
    }
    if (const JsonValue* index = doc.find("index")) {
      entry.index = static_cast<std::uint64_t>(index->num_or(0.0));
    }
    entry.report_json = report->str;
    if (const JsonValue* sweep = doc.find("sweep")) {
      if (out.sweep_.empty()) out.sweep_ = sweep->str;
    }
    auto [it, inserted] =
        out.by_run_.try_emplace(entry.run, out.entries_.size());
    if (inserted) {
      out.entries_.push_back(std::move(entry));
    } else {
      out.entries_[it->second] = std::move(entry);
    }
  }
  return true;
}

const CheckpointEntry* CheckpointJournal::find(
    const std::string& run_id) const {
  const auto it = by_run_.find(run_id);
  return it == by_run_.end() ? nullptr : &entries_[it->second];
}

std::string checkpoint_path_from_env() {
  if (const char* v = std::getenv("WEHEY_CHECKPOINT")) return v;
  return "";
}

}  // namespace wehey::obs
