// Deterministic run metrics: counters, gauges and fixed-bucket histograms.
//
// A MetricsRegistry is owned by exactly one execution context at a time —
// typically one trial of the parallel engine — so the hot path is a plain
// (non-atomic, lock-free) integer increment through a cached handle.
// Cross-thread aggregation happens by *merging* whole registries in a
// deterministic order (parallel_map absorbs per-trial registries in index
// order), so the merged snapshot is bit-identical regardless of
// WEHEY_THREADS.
//
// Handles returned by counter()/gauge()/histogram() stay valid for the
// registry's lifetime (node-based storage), so instrumented components
// look a name up once and increment a pointer afterwards.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace wehey::obs {

/// Monotonic event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }

 private:
  friend class MetricsRegistry;
  std::uint64_t value_ = 0;
};

/// Last-written value with min/max watermarks (e.g. peak event-heap depth).
class Gauge {
 public:
  void set(double v) {
    last_ = v;
    if (!seen_ || v < min_) min_ = v;
    if (!seen_ || v > max_) max_ = v;
    seen_ = true;
  }
  bool seen() const { return seen_; }
  double last() const { return last_; }
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  friend class MetricsRegistry;
  bool seen_ = false;
  double last_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-bucket linear histogram over [lo, hi): `buckets` equal-width bins
/// plus underflow/overflow. The layout is fixed at registration, so two
/// histograms registered with the same spec merge by summing bins.
class Histogram {
 public:
  Histogram() = default;
  Histogram(double lo, double hi, int buckets);

  void observe(double v);
  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return min_; }
  double max() const { return max_; }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  int buckets() const { return static_cast<int>(bins_.size()) - 2; }
  /// bins()[0] is underflow, bins().back() overflow.
  const std::vector<std::uint64_t>& bins() const { return bins_; }

 private:
  friend class MetricsRegistry;
  double lo_ = 0.0;
  double hi_ = 1.0;
  double width_ = 1.0;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::vector<std::uint64_t> bins_;  ///< underflow + buckets + overflow
};

class MetricsRegistry {
 public:
  /// Find-or-create. References remain valid until the registry dies.
  Counter& counter(const std::string& name) { return counters_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }
  /// The spec is fixed by the first registration of `name`; later calls
  /// with a different spec keep the original layout.
  Histogram& histogram(const std::string& name, double lo, double hi,
                       int buckets);

  /// Convenience for call sites that fire once (no handle worth caching).
  void add(const std::string& name, std::uint64_t n = 1) {
    counter(name).inc(n);
  }
  void set(const std::string& name, double v) { gauge(name).set(v); }

  /// Fold `other` into this registry: counters and histogram bins sum,
  /// gauges combine watermarks (and adopt `other`'s last written value).
  /// Deterministic given a deterministic merge order.
  void merge(const MetricsRegistry& other);

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }
  std::size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  /// Snapshot as a JSON object with sorted, stable key order:
  /// {"counters": {...}, "gauges": {...}, "histograms": {...}}.
  std::string to_json(int indent = 0) const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

/// Quantile estimate (q in [0, 1]) from a histogram's fixed buckets,
/// linearly interpolated within the bucket that crosses the target rank.
/// Underflow mass resolves to the recorded min, overflow mass to the
/// recorded max; the result is clamped to [min, max]. Returns 0 when the
/// histogram is empty. Deterministic: a pure function of the bins, so
/// p50/p90/p99 derived in reports match what any offline reader computes
/// from the same JSON.
double histogram_quantile(const Histogram& h, double q);

/// Render a double the way every obs JSON writer does: shortest
/// round-trippable decimal form, integral values without a trailing ".0"
/// mess ("17" not "17.000000"). Stable across platforms for the value
/// ranges we emit.
std::string json_number(double v);

}  // namespace wehey::obs
