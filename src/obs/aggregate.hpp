// SweepAggregator: deterministic merge of per-run RunReports into one
// "wehey.sweep_report.v1" JSON document — the sweep-scale counterpart of
// MetricsRegistry::merge.
//
//   {
//     "schema": "wehey.sweep_report.v1",
//     "sweep": "<bench or pipeline name>",
//     "runs": N,
//     "fault_plans": {"(none)": N, "replay-abort": N, ...},
//     "verdicts": {"<verdict>": N, ...},
//     "reasons": {"<reason>": N, ...},
//     "injection": {"<fault kind>": N, ..., "total": N},
//     "values": {"<name>": {"count", "min", "max", "mean", "sum",
//                            "p50", "p90", "p99"}, ...},
//     "stages": {"<stage>": {<same summary over per-run sim_ms>}, ...},
//     "profile": {"<stage>": {"spans": N, "sim_ms": {<summary>},
//                              "self_sim_ms": {<summary>}}, ...},
//     "cells": {"<cell>": {"runs": N, "verdicts": {...},
//                           "values": {<name>: <summary>}}, ...},
//     "quarantine": {"threshold": N, "cells": {"<cell>":
//                     {"poisoned_runs": N, "reasons": {...}}, ...}},
//     "knife_edge": {"margin_threshold": X, "cells": {"<cell>":
//                     {"min_margin": X, "runs_below": N}, ...}},
//     "audit": {"grid": {"tp", "fp", "fn", "tn", "skipped",
//                         "accuracy", "precision", "recall",
//                         "mismatch_reasons": {...}},
//               "cells": {"<cell>": {<same counts + ratios>,
//                          "knife_edge": bool}, ...}},
//     "cell_percentiles": {"<value>": {"cells": N, "p50", "p90", "p99"}},
//     "percentiles": {"<histogram>": {"p50", "p90", "p99"}, ...},
//     "metrics": {"counters": {...}, "gauges": {name: {"min", "max"}},
//                 "histograms": {<registry layout>}}
//   }
//
// Determinism contract (same as the rest of src/obs): the serialized
// sweep report is a pure function of the *set* of absorbed runs — byte
// identical across WEHEY_THREADS and across absorb orders. Integer
// tallies are associative; double-valued samples are collected per run
// and sorted numerically before any summation, so floating-point
// non-associativity cannot leak into the output. Gauge "last" values
// (inherently order-dependent) are dropped; only min/max survive.
//
// Runs can be absorbed in-process (add_run, from the live RunReport and
// its registry) or offline (add_run_json, from a written per-run report
// file). Because every obs writer serializes doubles via json_number
// (shortest round-trippable decimal), the two paths absorb bit-equal
// values and the resulting sweep files are byte-identical — CI diffs the
// in-process sweep against `wehey_cli merge` over the per-run files.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/inspect.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"

namespace wehey::obs {

/// The run-level decision margin (RunReport "decision.margin") is
/// absorbed into the per-cell value blocks under this name, so margin
/// distributions get the same sorted-sample summaries as every other
/// value — and the "knife_edge" block is derived from them.
inline constexpr char kDecisionMarginValue[] = "decision_margin";

/// Default |margin| below which a cell counts as knife-edge: its verdict
/// sits close enough to a decision boundary that background-traffic
/// realizations (e.g. packet vs fluid) can legitimately flip it.
inline constexpr double kDefaultKnifeEdgeMargin = 0.05;

/// WEHEY_KNIFE_EDGE_MARGIN, or kDefaultKnifeEdgeMargin when unset or
/// unparsable. Negative values are rejected (fall back to the default).
double knife_edge_margin_from_env();

class SweepAggregator {
 public:
  explicit SweepAggregator(std::string sweep_name)
      : sweep_(std::move(sweep_name)) {}

  /// Absorb one run (in-process path). `metrics` is the run's registry
  /// (may be null). The cell tally uses `report.cell`.
  void add_run(const RunReport& report, const MetricsRegistry* metrics);

  /// Absorb one run from a parsed per-run report document (offline
  /// path, `wehey_cli merge`). Accepts any wehey.run_report.* version;
  /// returns false and fills `error` on structural problems.
  bool add_run_json(const JsonValue& doc, std::string* error = nullptr);

  std::size_t runs() const { return runs_; }
  const std::string& sweep_name() const { return sweep_; }

  /// Serialize the aggregate (see the schema sketch above).
  std::string to_json() const;

 private:
  /// Per-metric sample set; all statistics are derived from the sorted
  /// samples at render time, making them independent of absorb order.
  struct Samples {
    std::vector<double> values;
  };

  struct ProfileAgg {
    std::uint64_t spans = 0;
    Samples sim_ms;
    Samples self_sim_ms;
  };

  struct GaugeAgg {
    bool seen = false;
    double min = 0.0;
    double max = 0.0;
  };

  /// Mirror of Histogram for merged cross-run state; per-run sums stay
  /// unsummed until render (see Samples).
  struct HistAgg {
    double lo = 0.0;
    double hi = 1.0;
    std::uint64_t count = 0;
    double min = 0.0;
    double max = 0.0;
    std::vector<std::uint64_t> bins;
    Samples run_sums;  ///< one entry per contributing non-empty run
  };

  /// Confusion-matrix counts folded from per-run "audit" sections
  /// (RunReport v5). Purely integer tallies, so the fold is associative
  /// and the rendered ratios are a function of the absorbed run set.
  struct AuditTally {
    std::uint64_t tp = 0;
    std::uint64_t fp = 0;
    std::uint64_t fn = 0;
    std::uint64_t tn = 0;
    std::uint64_t skipped = 0;
    std::map<std::string, std::uint64_t> mismatch_reasons;
    bool any() const { return tp + fp + fn + tn + skipped > 0; }
  };

  struct CellAgg {
    std::uint64_t runs = 0;
    std::map<std::string, std::uint64_t> verdicts;
    std::map<std::string, Samples> values;
    AuditTally audit;
    /// Runs whose verdict was the budget-exhausted (crash-equivalent)
    /// outcome, with their reason strings. A cell with
    /// >= kQuarantineThreshold poisoned runs is quarantined in the
    /// report's "quarantine" block; the sweep itself keeps going.
    std::uint64_t poisoned = 0;
    std::map<std::string, std::uint64_t> poison_reasons;
  };

  void tally_run(const std::string& cell, const std::string& fault_plan,
                 const std::string& verdict, const std::string& reason);
  void absorb_audit(const std::string& cell, const std::string& classification,
                    const std::string& mismatch_reason);
  void absorb_value(const std::string& cell, const std::string& name,
                    double v);
  void absorb_stage(const std::string& name, double sim_ms);
  void absorb_profile(const std::string& name, std::uint64_t count,
                      double sim_ms, double self_sim_ms);
  void absorb_histogram(const std::string& name, double lo, double hi,
                        std::uint64_t count, double sum, double min,
                        double max, const std::vector<std::uint64_t>& bins);

  std::string sweep_;
  std::size_t runs_ = 0;
  std::map<std::string, std::uint64_t> fault_plans_;
  std::map<std::string, std::uint64_t> verdicts_;
  std::map<std::string, std::uint64_t> reasons_;
  std::map<std::string, std::int64_t> injection_;
  AuditTally audit_;
  std::map<std::string, Samples> values_;
  std::map<std::string, Samples> stages_;
  std::map<std::string, ProfileAgg> profile_;
  std::map<std::string, CellAgg> cells_;
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, GaugeAgg> gauges_;
  std::map<std::string, HistAgg> histograms_;
};

/// True when `doc` looks like a wehey.sweep_report.v1 document.
bool is_sweep_report(const JsonValue& doc);

// ---------------------------------------------------------------------------
// Baseline comparison (`wehey_cli compare`, mirrored by
// tools/bench_compare.py).

struct CompareOptions {
  /// Default relative tolerance for numeric drift (|cand - base| /
  /// max(|base|, 1e-12) must stay <= tolerance; near-zero baselines fall
  /// back to the same bound taken absolutely).
  double tolerance = 0.05;
  /// Per-key overrides: first regex (std::regex, searched against the
  /// dotted key path) that matches wins.
  std::vector<std::pair<std::string, double>> key_tolerances;
  /// Key paths (regex) excluded from comparison entirely — wall-clock
  /// seconds, host-dependent throughput numbers, ...
  std::vector<std::string> ignore;
  /// Floors: the candidate value at every key matching the regex must be
  /// >= the given bound (used for speedup gates, independent of the
  /// baseline value).
  std::vector<std::pair<std::string, double>> min_keys;
  /// Existence assertions: each regex must match at least one flattened
  /// candidate key (of any type) or the comparison fails. Guards CI gates
  /// against a renamed/removed section silently turning the gate into a
  /// no-op; ignored keys still count as matches.
  std::vector<std::string> require_keys;
};

struct CompareResult {
  bool ok = true;
  /// Human-readable, deterministic (key-sorted) failure lines.
  std::vector<std::string> failures;
  /// Non-fatal remarks (keys only present on one side, ...).
  std::vector<std::string> notes;
};

/// All flattened dotted key paths of `doc`, in sorted order — the exact
/// key space `compare_reports` matches its regexes against. Backs
/// `wehey_cli compare --list-keys` (and mirrors bench_compare.py's
/// --list-keys) for triaging require/min-key patterns that match
/// nothing.
std::vector<std::string> flatten_keys(const JsonValue& doc);

/// Diff `candidate` against `baseline`: both documents are flattened to
/// dotted key paths; numbers are compared with relative tolerance,
/// strings for equality. Keys present only in the baseline fail (a
/// metric disappeared); keys only in the candidate are notes (the schema
/// grew).
CompareResult compare_reports(const JsonValue& baseline,
                              const JsonValue& candidate,
                              const CompareOptions& options);

}  // namespace wehey::obs
