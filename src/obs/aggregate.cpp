#include "obs/aggregate.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <regex>
#include <sstream>

#include "common/time.hpp"
#include "obs/timeline.hpp"

namespace wehey::obs {

namespace {

constexpr char kNoneLabel[] = "(none)";

const std::string& label_or_none(const std::string& s) {
  static const std::string none = kNoneLabel;
  return s.empty() ? none : s;
}

/// Linear-interpolated quantile of an ascending-sorted sample vector.
double samples_quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t i = static_cast<std::size_t>(pos);
  if (i + 1 >= sorted.size()) return sorted.back();
  const double frac = pos - static_cast<double>(i);
  return sorted[i] + (sorted[i + 1] - sorted[i]) * frac;
}

/// Sum in ascending order — with pre-sorted input this is a pure
/// function of the sample *set*, immune to absorb order.
double sorted_sum(const std::vector<double>& sorted) {
  double total = 0.0;
  for (double v : sorted) total += v;
  return total;
}

}  // namespace

double knife_edge_margin_from_env() {
  if (const char* v = std::getenv("WEHEY_KNIFE_EDGE_MARGIN")) {
    char* end = nullptr;
    const double parsed = std::strtod(v, &end);
    if (end != v && *end == 0 && parsed >= 0.0) return parsed;
  }
  return kDefaultKnifeEdgeMargin;
}

void SweepAggregator::tally_run(const std::string& cell,
                                const std::string& fault_plan,
                                const std::string& verdict,
                                const std::string& reason) {
  ++runs_;
  ++fault_plans_[label_or_none(fault_plan)];
  ++verdicts_[label_or_none(verdict)];
  if (!reason.empty()) ++reasons_[reason];
  if (!cell.empty()) {
    CellAgg& c = cells_[cell];
    ++c.runs;
    ++c.verdicts[label_or_none(verdict)];
    if (verdict == kBudgetExhaustedVerdict) {
      ++c.poisoned;
      ++c.poison_reasons[label_or_none(reason)];
    }
  }
}

void SweepAggregator::absorb_audit(const std::string& cell,
                                   const std::string& classification,
                                   const std::string& mismatch_reason) {
  const auto apply = [&](AuditTally& t) {
    if (classification == "tp") {
      ++t.tp;
    } else if (classification == "fp") {
      ++t.fp;
    } else if (classification == "fn") {
      ++t.fn;
    } else if (classification == "tn") {
      ++t.tn;
    } else {
      ++t.skipped;
    }
    if (!mismatch_reason.empty()) ++t.mismatch_reasons[mismatch_reason];
  };
  apply(audit_);
  if (!cell.empty()) apply(cells_[cell].audit);
}

void SweepAggregator::absorb_value(const std::string& cell,
                                   const std::string& name, double v) {
  values_[name].values.push_back(v);
  if (!cell.empty()) cells_[cell].values[name].values.push_back(v);
}

void SweepAggregator::absorb_stage(const std::string& name, double sim_ms) {
  stages_[name].values.push_back(sim_ms);
}

void SweepAggregator::absorb_profile(const std::string& name,
                                     std::uint64_t count, double sim_ms,
                                     double self_sim_ms) {
  ProfileAgg& p = profile_[name];
  p.spans += count;
  p.sim_ms.values.push_back(sim_ms);
  p.self_sim_ms.values.push_back(self_sim_ms);
}

void SweepAggregator::absorb_histogram(const std::string& name, double lo,
                                       double hi, std::uint64_t count,
                                       double sum, double min, double max,
                                       const std::vector<std::uint64_t>& bins) {
  auto [it, inserted] = histograms_.try_emplace(name);
  HistAgg& mine = it->second;
  if (inserted) {
    mine.lo = lo;
    mine.hi = hi;
    mine.bins.assign(bins.size(), 0);
  }
  if (count == 0) return;
  if (mine.count == 0 || min < mine.min) mine.min = min;
  if (mine.count == 0 || max > mine.max) mine.max = max;
  mine.count += count;
  mine.run_sums.values.push_back(sum);
  const std::size_t n = std::min(mine.bins.size(), bins.size());
  for (std::size_t i = 0; i < n; ++i) mine.bins[i] += bins[i];
}

void SweepAggregator::add_run(const RunReport& report,
                              const MetricsRegistry* metrics) {
  tally_run(report.cell, report.fault_plan, report.verdict, report.reason);
  for (const auto& [kind, n] : report.injection) injection_[kind] += n;
  for (const auto& [name, v] : report.values) {
    absorb_value(report.cell, name, v);
  }
  // The verdict margin joins the cell's value blocks; the knife_edge
  // block is derived from these samples at render time.
  if (report.decision.has_margin) {
    absorb_value(report.cell, kDecisionMarginValue, report.decision.margin);
  }
  if (report.audit.present) {
    absorb_audit(report.cell, report.audit.classification,
                 report.audit.mismatch_reason);
  }
  for (const auto& s : report.stages) {
    // The identical expression RunReport::to_json serializes, so the
    // in-process and offline absorb paths see bit-equal doubles.
    absorb_stage(s.name,
                 to_milliseconds(s.sim_end) - to_milliseconds(s.sim_start));
  }
  for (const auto& p : report.profile) {
    absorb_profile(p.name, p.count, p.sim_ms, p.self_sim_ms);
  }
  if (metrics == nullptr) return;
  for (const auto& [name, c] : metrics->counters()) {
    counters_[name] += c.value();
  }
  for (const auto& [name, g] : metrics->gauges()) {
    if (!g.seen()) continue;
    GaugeAgg& mine = gauges_[name];
    if (!mine.seen || g.min() < mine.min) mine.min = g.min();
    if (!mine.seen || g.max() > mine.max) mine.max = g.max();
    mine.seen = true;
  }
  for (const auto& [name, h] : metrics->histograms()) {
    absorb_histogram(name, h.lo(), h.hi(), h.count(), h.sum(),
                     h.count() ? h.min() : 0.0, h.count() ? h.max() : 0.0,
                     h.bins());
  }
}

bool SweepAggregator::add_run_json(const JsonValue& doc, std::string* error) {
  const auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  if (doc.type != JsonValue::Type::Object) {
    return fail("not a JSON object");
  }
  const JsonValue* schema = doc.find("schema");
  if (schema == nullptr || schema->type != JsonValue::Type::String ||
      schema->str.rfind(kRunReportSchemaPrefix, 0) != 0) {
    return fail("not a wehey.run_report.* document");
  }
  const auto str_or = [&](const char* key) -> std::string {
    const JsonValue* v = doc.find(key);
    return (v != nullptr && v->type == JsonValue::Type::String) ? v->str
                                                                : std::string();
  };
  const std::string cell = str_or("cell");
  tally_run(cell, str_or("fault_plan"), str_or("verdict"), str_or("reason"));

  if (const JsonValue* inj = doc.find("injection");
      inj != nullptr && inj->type == JsonValue::Type::Object) {
    for (const auto& [kind, v] : inj->object) {
      if (kind == "total") continue;  // derived on output, never absorbed
      injection_[kind] += static_cast<std::int64_t>(v.num_or(0.0));
    }
  }
  if (const JsonValue* values = doc.find("values");
      values != nullptr && values->type == JsonValue::Type::Object) {
    for (const auto& [name, v] : values->object) {
      if (v.type == JsonValue::Type::Number) absorb_value(cell, name, v.number);
    }
  }
  // json_number round-trips doubles exactly, so this absorbs a value
  // bit-equal to what add_run sees from the live report.
  if (const JsonValue* decision = doc.find("decision");
      decision != nullptr && decision->type == JsonValue::Type::Object) {
    if (const JsonValue* margin = decision->find("margin");
        margin != nullptr && margin->type == JsonValue::Type::Number) {
      absorb_value(cell, kDecisionMarginValue, margin->number);
    }
  }
  // Pre-v5 reports have no "audit" object; absorbing nothing keeps the
  // aggregate identical to what add_run sees for an audit-free RunReport.
  if (const JsonValue* audit = doc.find("audit");
      audit != nullptr && audit->type == JsonValue::Type::Object) {
    const auto field = [&](const char* key) -> std::string {
      const JsonValue* v = audit->find(key);
      return (v != nullptr && v->type == JsonValue::Type::String)
                 ? v->str
                 : std::string();
    };
    absorb_audit(cell, field("classification"), field("mismatch_reason"));
  }
  if (const JsonValue* stages = doc.find("stages");
      stages != nullptr && stages->type == JsonValue::Type::Array) {
    for (const auto& s : stages->array) {
      const JsonValue* name = s.find("name");
      const JsonValue* sim_ms = s.find("sim_ms");
      if (name == nullptr || name->type != JsonValue::Type::String ||
          sim_ms == nullptr || sim_ms->type != JsonValue::Type::Number) {
        return fail("malformed stages entry");
      }
      absorb_stage(name->str, sim_ms->number);
    }
  }
  if (const JsonValue* profile = doc.find("profile");
      profile != nullptr && profile->type == JsonValue::Type::Object) {
    for (const auto& [name, p] : profile->object) {
      const JsonValue* count = p.find("count");
      const JsonValue* sim_ms = p.find("sim_ms");
      const JsonValue* self_ms = p.find("self_sim_ms");
      if (count == nullptr || sim_ms == nullptr || self_ms == nullptr) {
        return fail("malformed profile entry '" + name + "'");
      }
      absorb_profile(name, static_cast<std::uint64_t>(count->num_or(0.0)),
                     sim_ms->num_or(0.0), self_ms->num_or(0.0));
    }
  }
  const JsonValue* metrics = doc.find("metrics");
  if (metrics == nullptr || metrics->type != JsonValue::Type::Object) {
    return true;  // v1 reports may omit the whole block
  }
  if (const JsonValue* counters = metrics->find("counters");
      counters != nullptr && counters->type == JsonValue::Type::Object) {
    for (const auto& [name, v] : counters->object) {
      counters_[name] += static_cast<std::uint64_t>(v.num_or(0.0));
    }
  }
  if (const JsonValue* gauges = metrics->find("gauges");
      gauges != nullptr && gauges->type == JsonValue::Type::Object) {
    for (const auto& [name, g] : gauges->object) {
      const JsonValue* min = g.find("min");
      const JsonValue* max = g.find("max");
      if (min == nullptr || max == nullptr) continue;
      GaugeAgg& mine = gauges_[name];
      if (!mine.seen || min->number < mine.min) mine.min = min->number;
      if (!mine.seen || max->number > mine.max) mine.max = max->number;
      mine.seen = true;
    }
  }
  if (const JsonValue* hists = metrics->find("histograms");
      hists != nullptr && hists->type == JsonValue::Type::Object) {
    for (const auto& [name, h] : hists->object) {
      const JsonValue* bins = h.find("bins");
      if (bins == nullptr || bins->type != JsonValue::Type::Array) {
        return fail("histogram '" + name + "' has no bins array");
      }
      std::vector<std::uint64_t> b;
      b.reserve(bins->array.size());
      for (const auto& v : bins->array) {
        b.push_back(static_cast<std::uint64_t>(v.num_or(0.0)));
      }
      const auto field = [&](const char* key) {
        const JsonValue* v = h.find(key);
        return v != nullptr ? v->num_or(0.0) : 0.0;
      };
      absorb_histogram(name, field("lo"), field("hi"),
                       static_cast<std::uint64_t>(field("count")),
                       field("sum"), field("min"), field("max"), b);
    }
  }
  return true;
}

namespace {

/// {"count": N, "min":, "max":, "mean":, "sum":, "p50":, "p90":, "p99":}
/// over the numerically sorted samples.
void emit_summary(std::ostringstream& out, std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  const double sum = sorted_sum(samples);
  const std::size_t n = samples.size();
  out << "{\"count\": " << n;
  if (n > 0) {
    out << ", \"min\": " << json_number(samples.front())
        << ", \"max\": " << json_number(samples.back())
        << ", \"mean\": " << json_number(sum / static_cast<double>(n))
        << ", \"sum\": " << json_number(sum)
        << ", \"p50\": " << json_number(samples_quantile(samples, 0.50))
        << ", \"p90\": " << json_number(samples_quantile(samples, 0.90))
        << ", \"p99\": " << json_number(samples_quantile(samples, 0.99));
  }
  out << "}";
}

void emit_tally(std::ostringstream& out, const std::string& indent,
                const std::map<std::string, std::uint64_t>& tally) {
  out << "{";
  bool first = true;
  for (const auto& [name, n] : tally) {
    out << (first ? "\n" : ",\n") << indent << "  \"" << json_escape(name)
        << "\": " << n;
    first = false;
  }
  out << (first ? "" : "\n" + indent) << "}";
}

/// histogram_quantile, restated over merged cross-run bins.
double agg_quantile(double lo, double hi, std::uint64_t count, double min,
                    double max, const std::vector<std::uint64_t>& bins,
                    double q) {
  if (count == 0 || bins.size() < 3) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(count);
  const double width =
      (hi - lo) / static_cast<double>(bins.size() - 2);
  double cum = 0.0;
  double value = max;
  for (std::size_t i = 0; i < bins.size(); ++i) {
    if (bins[i] == 0) continue;
    const double next = cum + static_cast<double>(bins[i]);
    if (next >= target) {
      if (i == 0) {
        value = min;
      } else if (i == bins.size() - 1) {
        value = max;
      } else {
        const double frac = (target - cum) / static_cast<double>(bins[i]);
        value = lo + (static_cast<double>(i - 1) + frac) * width;
      }
      break;
    }
    cum = next;
  }
  if (value < min) value = min;
  if (value > max) value = max;
  return value;
}

}  // namespace

std::string SweepAggregator::to_json() const {
  std::ostringstream out;
  out << "{\n";
  out << "  \"schema\": \"" << kSweepReportSchema << "\",\n";
  out << "  \"sweep\": \"" << json_escape(sweep_) << "\",\n";
  out << "  \"runs\": " << runs_ << ",\n";
  out << "  \"fault_plans\": ";
  emit_tally(out, "  ", fault_plans_);
  out << ",\n  \"verdicts\": ";
  emit_tally(out, "  ", verdicts_);
  out << ",\n  \"reasons\": ";
  emit_tally(out, "  ", reasons_);
  out << ",\n  \"injection\": {";
  bool first = true;
  std::int64_t total = 0;
  for (const auto& [kind, n] : injection_) {
    out << (first ? "\n" : ",\n") << "    \"" << json_escape(kind)
        << "\": " << n;
    total += n;
    first = false;
  }
  if (!first) out << ",\n    \"total\": " << total << "\n  ";
  out << "},\n";

  out << "  \"values\": {";
  first = true;
  for (const auto& [name, s] : values_) {
    out << (first ? "\n" : ",\n") << "    \"" << json_escape(name) << "\": ";
    emit_summary(out, s.values);
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n";

  out << "  \"stages\": {";
  first = true;
  for (const auto& [name, s] : stages_) {
    out << (first ? "\n" : ",\n") << "    \"" << json_escape(name) << "\": ";
    emit_summary(out, s.values);
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n";

  out << "  \"profile\": {";
  first = true;
  for (const auto& [name, p] : profile_) {
    out << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
        << "\": {\"spans\": " << p.spans << ", \"sim_ms\": ";
    emit_summary(out, p.sim_ms.values);
    out << ", \"self_sim_ms\": ";
    emit_summary(out, p.self_sim_ms.values);
    out << "}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n";

  out << "  \"cells\": {";
  first = true;
  for (const auto& [cell, c] : cells_) {
    out << (first ? "\n" : ",\n") << "    \"" << json_escape(cell)
        << "\": {\n      \"runs\": " << c.runs << ",\n      \"verdicts\": ";
    emit_tally(out, "      ", c.verdicts);
    out << ",\n      \"values\": {";
    bool vfirst = true;
    for (const auto& [name, s] : c.values) {
      out << (vfirst ? "\n" : ",\n") << "        \"" << json_escape(name)
          << "\": ";
      emit_summary(out, s.values);
      vfirst = false;
    }
    out << (vfirst ? "" : "\n      ") << "}\n    }";
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n";

  // Quarantine: a pure function of the absorbed run set (like every other
  // block), so resumed and uninterrupted sweeps agree byte-for-byte.
  // Only quarantined cells are listed; presence in "cells" = quarantined.
  out << "  \"quarantine\": {\n    \"threshold\": "
      << kQuarantineThreshold << ",\n    \"cells\": {";
  first = true;
  for (const auto& [cell, c] : cells_) {
    if (c.poisoned < static_cast<std::uint64_t>(kQuarantineThreshold)) {
      continue;
    }
    out << (first ? "\n" : ",\n") << "      \"" << json_escape(cell)
        << "\": {\"poisoned_runs\": " << c.poisoned << ", \"reasons\": ";
    emit_tally(out, "      ", c.poison_reasons);
    out << "}";
    first = false;
  }
  out << (first ? "" : "\n    ") << "}\n  },\n";

  // Knife-edge cells: minimum |decision margin| below the configured
  // threshold, i.e. at least one run's verdict sat close enough to a
  // decision boundary that an equivalent-but-not-identical realization
  // (packet vs fluid background, a different seed) could flip it. CI
  // derives its per-cell verdict exemptions from this block instead of
  // hard-coding cell names.
  const double knife_margin = knife_edge_margin_from_env();
  out << "  \"knife_edge\": {\n    \"margin_threshold\": "
      << json_number(knife_margin) << ",\n    \"cells\": {";
  first = true;
  for (const auto& [cell, c] : cells_) {
    const auto it = c.values.find(kDecisionMarginValue);
    if (it == c.values.end() || it->second.values.empty()) continue;
    double min_abs = 0.0;
    std::uint64_t below = 0;
    bool seen = false;
    for (double v : it->second.values) {
      const double a = std::abs(v);
      if (!seen || a < min_abs) min_abs = a;
      seen = true;
      if (a < knife_margin) ++below;
    }
    if (min_abs >= knife_margin) continue;
    out << (first ? "\n" : ",\n") << "      \"" << json_escape(cell)
        << "\": {\"min_margin\": " << json_number(min_abs)
        << ", \"runs_below\": " << below << "}";
    first = false;
  }
  out << (first ? "" : "\n    ") << "}\n  },\n";

  // Verdict audit: per-cell and grid-level confusion matrices folded
  // from the per-run "audit" sections (RunReport v5). The block is
  // absent when no absorbed run carried an audit, so pre-v5 inputs
  // serialize byte-identically to before. Ratios are derived from the
  // integer tallies at render time; knife-edge cells (same min-|margin|
  // criterion as the knife_edge block above) are flagged, not dropped,
  // so CI gates can exempt them explicitly.
  if (audit_.any()) {
    const auto emit_audit = [&](const AuditTally& t, const std::string& ind) {
      const auto ratio = [](std::uint64_t num, std::uint64_t den) {
        return den == 0 ? 0.0
                        : static_cast<double>(num) / static_cast<double>(den);
      };
      const std::uint64_t decided = t.tp + t.fp + t.fn + t.tn;
      out << "\"tp\": " << t.tp << ", \"fp\": " << t.fp << ", \"fn\": "
          << t.fn << ", \"tn\": " << t.tn << ", \"skipped\": " << t.skipped
          << ",\n" << ind << " \"accuracy\": "
          << json_number(ratio(t.tp + t.tn, decided))
          << ", \"precision\": " << json_number(ratio(t.tp, t.tp + t.fp))
          << ", \"recall\": " << json_number(ratio(t.tp, t.tp + t.fn))
          << ",\n" << ind << " \"mismatch_reasons\": ";
      emit_tally(out, ind + " ", t.mismatch_reasons);
    };
    out << "  \"audit\": {\n    \"grid\": {";
    emit_audit(audit_, "   ");
    out << "},\n    \"cells\": {";
    first = true;
    for (const auto& [cell, c] : cells_) {
      if (!c.audit.any()) continue;
      bool knife = false;
      if (const auto it = c.values.find(kDecisionMarginValue);
          it != c.values.end()) {
        for (double v : it->second.values) {
          if (std::abs(v) < knife_margin) {
            knife = true;
            break;
          }
        }
      }
      out << (first ? "\n" : ",\n") << "      \"" << json_escape(cell)
          << "\": {";
      emit_audit(c.audit, "     ");
      out << ",\n       \"knife_edge\": " << (knife ? "true" : "false")
          << "}";
      first = false;
    }
    out << (first ? "" : "\n    ") << "}\n  },\n";
  }

  // Cross-cell distribution of per-cell means: how a value varies across
  // the grid rather than across individual runs.
  out << "  \"cell_percentiles\": {";
  first = true;
  {
    std::map<std::string, std::vector<double>> by_value;
    for (const auto& [cell, c] : cells_) {
      for (const auto& [name, s] : c.values) {
        if (s.values.empty()) continue;
        std::vector<double> sorted = s.values;
        std::sort(sorted.begin(), sorted.end());
        by_value[name].push_back(sorted_sum(sorted) /
                                 static_cast<double>(sorted.size()));
      }
    }
    for (auto& [name, means] : by_value) {
      std::sort(means.begin(), means.end());
      out << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
          << "\": {\"cells\": " << means.size()
          << ", \"p50\": " << json_number(samples_quantile(means, 0.50))
          << ", \"p90\": " << json_number(samples_quantile(means, 0.90))
          << ", \"p99\": " << json_number(samples_quantile(means, 0.99))
          << "}";
      first = false;
    }
  }
  out << (first ? "" : "\n  ") << "},\n";

  out << "  \"percentiles\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (h.count == 0) continue;
    out << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
        << "\": {\"p50\": "
        << json_number(
               agg_quantile(h.lo, h.hi, h.count, h.min, h.max, h.bins, 0.50))
        << ", \"p90\": "
        << json_number(
               agg_quantile(h.lo, h.hi, h.count, h.min, h.max, h.bins, 0.90))
        << ", \"p99\": "
        << json_number(
               agg_quantile(h.lo, h.hi, h.count, h.min, h.max, h.bins, 0.99))
        << "}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n";

  out << "  \"metrics\": {\n";
  out << "    \"counters\": {";
  first = true;
  for (const auto& [name, v] : counters_) {
    out << (first ? "\n" : ",\n") << "      \"" << json_escape(name)
        << "\": " << v;
    first = false;
  }
  out << (first ? "" : "\n    ") << "},\n";
  // Gauge "last" is a function of absorb order, so the sweep keeps only
  // the order-free watermarks.
  out << "    \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!g.seen) continue;
    out << (first ? "\n" : ",\n") << "      \"" << json_escape(name)
        << "\": {\"min\": " << json_number(g.min)
        << ", \"max\": " << json_number(g.max) << "}";
    first = false;
  }
  out << (first ? "" : "\n    ") << "},\n";
  out << "    \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    std::vector<double> sums = h.run_sums.values;
    std::sort(sums.begin(), sums.end());
    out << (first ? "\n" : ",\n") << "      \"" << json_escape(name)
        << "\": {\"lo\": " << json_number(h.lo)
        << ", \"hi\": " << json_number(h.hi) << ", \"count\": " << h.count
        << ", \"sum\": " << json_number(sorted_sum(sums))
        << ", \"min\": " << json_number(h.count ? h.min : 0.0)
        << ", \"max\": " << json_number(h.count ? h.max : 0.0)
        << ", \"bins\": [";
    for (std::size_t i = 0; i < h.bins.size(); ++i) {
      if (i > 0) out << ", ";
      out << h.bins[i];
    }
    out << "]}";
    first = false;
  }
  out << (first ? "" : "\n    ") << "}\n";
  out << "  }\n";
  out << "}\n";
  return out.str();
}

bool is_sweep_report(const JsonValue& doc) {
  if (doc.type != JsonValue::Type::Object) return false;
  const JsonValue* schema = doc.find("schema");
  return schema != nullptr && schema->type == JsonValue::Type::String &&
         schema->str == kSweepReportSchema;
}

// ---------------------------------------------------------------------------
// Baseline comparison.

namespace {

struct FlatValue {
  JsonValue::Type type = JsonValue::Type::Null;
  double number = 0.0;
  std::string str;
  bool boolean = false;
};

void flatten(const JsonValue& v, const std::string& path,
             std::map<std::string, FlatValue>& out) {
  switch (v.type) {
    case JsonValue::Type::Object:
      for (const auto& [key, child] : v.object) {
        flatten(child, path.empty() ? key : path + "." + key, out);
      }
      break;
    case JsonValue::Type::Array:
      for (std::size_t i = 0; i < v.array.size(); ++i) {
        flatten(v.array[i], path + "[" + std::to_string(i) + "]", out);
      }
      break;
    default: {
      FlatValue f;
      f.type = v.type;
      f.number = v.number;
      f.str = v.str;
      f.boolean = v.boolean;
      out[path] = std::move(f);
      break;
    }
  }
}

bool any_match(const std::vector<std::string>& patterns,
               const std::string& key) {
  for (const auto& p : patterns) {
    if (std::regex_search(key, std::regex(p))) return true;
  }
  return false;
}

std::string type_name(JsonValue::Type t) {
  switch (t) {
    case JsonValue::Type::Null: return "null";
    case JsonValue::Type::Bool: return "bool";
    case JsonValue::Type::Number: return "number";
    case JsonValue::Type::String: return "string";
    case JsonValue::Type::Array: return "array";
    case JsonValue::Type::Object: return "object";
  }
  return "?";
}

}  // namespace

std::vector<std::string> flatten_keys(const JsonValue& doc) {
  std::map<std::string, FlatValue> flat;
  flatten(doc, "", flat);
  std::vector<std::string> keys;
  keys.reserve(flat.size());
  for (const auto& [key, value] : flat) keys.push_back(key);
  return keys;
}

CompareResult compare_reports(const JsonValue& baseline,
                              const JsonValue& candidate,
                              const CompareOptions& options) {
  CompareResult result;
  std::map<std::string, FlatValue> base, cand;
  flatten(baseline, "", base);
  flatten(candidate, "", cand);

  const auto tolerance_for = [&](const std::string& key) {
    for (const auto& [pattern, tol] : options.key_tolerances) {
      if (std::regex_search(key, std::regex(pattern))) return tol;
    }
    return options.tolerance;
  };

  for (const auto& [key, b] : base) {
    if (any_match(options.ignore, key)) continue;
    const auto it = cand.find(key);
    if (it == cand.end()) {
      result.failures.push_back("missing in candidate: " + key);
      continue;
    }
    const FlatValue& c = it->second;
    if (b.type != c.type) {
      result.failures.push_back("type changed at " + key + ": " +
                                type_name(b.type) + " -> " +
                                type_name(c.type));
      continue;
    }
    switch (b.type) {
      case JsonValue::Type::String:
        if (b.str != c.str) {
          result.failures.push_back("string changed at " + key + ": \"" +
                                    b.str + "\" -> \"" + c.str + "\"");
        }
        break;
      case JsonValue::Type::Bool:
        if (b.boolean != c.boolean) {
          result.failures.push_back("bool changed at " + key);
        }
        break;
      case JsonValue::Type::Number: {
        const double tol = tolerance_for(key);
        const double diff = std::abs(c.number - b.number);
        const double denom = std::abs(b.number);
        const bool bad = denom < 1e-12 ? diff > tol : diff / denom > tol;
        if (bad) {
          result.failures.push_back(
              "out of tolerance at " + key + ": " + json_number(b.number) +
              " -> " + json_number(c.number) + " (tol " + json_number(tol) +
              ")");
        }
        break;
      }
      default:
        break;  // nulls compare equal by type
    }
  }
  for (const auto& [key, c] : cand) {
    if (base.count(key) != 0 || any_match(options.ignore, key)) continue;
    result.notes.push_back("new key (not in baseline): " + key);
  }
  for (const auto& [pattern, floor] : options.min_keys) {
    const std::regex re(pattern);
    bool matched = false;
    for (const auto& [key, c] : cand) {
      if (c.type != JsonValue::Type::Number || !std::regex_search(key, re)) {
        continue;
      }
      matched = true;
      if (c.number < floor) {
        result.failures.push_back("below floor at " + key + ": " +
                                  json_number(c.number) + " < " +
                                  json_number(floor));
      }
    }
    if (!matched) {
      result.failures.push_back("min-key pattern matched nothing: " + pattern);
    }
  }
  // Existence gates: deliberately checked against *all* candidate keys,
  // including ignored ones — "this section exists" and "this section's
  // numbers drift" are independent assertions.
  for (const auto& pattern : options.require_keys) {
    const std::regex re(pattern);
    bool matched = false;
    for (const auto& [key, c] : cand) {
      if (std::regex_search(key, re)) {
        matched = true;
        break;
      }
    }
    if (!matched) {
      result.failures.push_back("require-key pattern matched nothing: " +
                                pattern);
    }
  }
  result.ok = result.failures.empty();
  return result;
}

}  // namespace wehey::obs
