// Cached metric handles for simulator hot paths.
//
// Instrumented components (queue discs, links, TCP senders) sit below the
// layer that owns the Recorder, and the recorder bound to the current
// thread changes per trial under the parallel engine. These handles make
// a hot-path observation cheap and correct under re-binding:
//
//   * unbound (the common case for plain test/bench runs): one
//     thread-local load and one branch, nothing else;
//   * bound: the handle resolves the metric against the current recorder
//     once, caches the pointer, and re-resolves only when the binding
//     changes (a different trial's recorder on this thread);
//   * -DWEHEY_OBS=OFF: observe()/inc() fold away entirely because
//     Recorder::current() is a constant nullptr.
//
// Handles are owned by the instrumented object, so the metric name is
// built once at construction, not per observation.
#pragma once

#include <string>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/recorder.hpp"

namespace wehey::obs {

/// Hot-path handle to a fixed-bucket histogram, resolved lazily against
/// whichever Recorder is bound to the calling thread.
class HistogramHandle {
 public:
  HistogramHandle(std::string name, double lo, double hi, int buckets)
      : name_(std::move(name)), lo_(lo), hi_(hi), buckets_(buckets) {}

  /// Rebuild the handle under a new metric name (drops the cached
  /// resolution). Call before the first observation, e.g. when a disc or
  /// link is labeled after construction.
  void rename(std::string name) {
    name_ = std::move(name);
    bound_ = nullptr;
    hist_ = nullptr;
  }

  const std::string& name() const { return name_; }

  void observe(double v) {
    Recorder* rec = Recorder::current();
    if (rec == nullptr) return;
    if (rec != bound_) rebind(rec);
    if (hist_ != nullptr) hist_->observe(v);
  }

 private:
  void rebind(Recorder* rec) {
    bound_ = rec;
    hist_ = rec->metrics_on()
                ? &rec->metrics().histogram(name_, lo_, hi_, buckets_)
                : nullptr;
  }

  std::string name_;
  double lo_;
  double hi_;
  int buckets_;
  Recorder* bound_ = nullptr;
  Histogram* hist_ = nullptr;
};

/// Hot-path handle to a counter; same resolution rules as HistogramHandle.
class CounterHandle {
 public:
  explicit CounterHandle(std::string name) : name_(std::move(name)) {}

  void rename(std::string name) {
    name_ = std::move(name);
    bound_ = nullptr;
    counter_ = nullptr;
  }

  const std::string& name() const { return name_; }

  void inc(std::uint64_t n = 1) {
    Recorder* rec = Recorder::current();
    if (rec == nullptr) return;
    if (rec != bound_) rebind(rec);
    if (counter_ != nullptr) counter_->inc(n);
  }

 private:
  void rebind(Recorder* rec) {
    bound_ = rec;
    counter_ = rec->metrics_on() ? &rec->metrics().counter(name_) : nullptr;
  }

  std::string name_;
  Recorder* bound_ = nullptr;
  Counter* counter_ = nullptr;
};

}  // namespace wehey::obs
