#include "obs/recorder.hpp"

#include <cstdlib>

namespace wehey::obs {

namespace {

thread_local Recorder* t_current = nullptr;

bool env_flag(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && v[0] != 0 && std::string(v) != "0";
}

}  // namespace

void Recorder::absorb(Recorder&& c, const std::string& track) {
  if (metrics_on_) metrics_.merge(c.metrics_);
  if (trace_on_) {
    if (!track.empty() && !c.timeline_.empty()) {
      c.timeline_.name_track(0, track);
    }
    timeline_.absorb(std::move(c.timeline_));
  }
}

Recorder* Recorder::current() {
  if constexpr (!kObsCompiled) return nullptr;
  return t_current;
}

ScopedRecorder::ScopedRecorder(Recorder* r) : prev_(t_current) {
  if constexpr (kObsCompiled) t_current = r;
}

ScopedRecorder::~ScopedRecorder() {
  if constexpr (kObsCompiled) t_current = prev_;
}

RunObservation RunObservation::from_env() {
  RunObservation out;
  if constexpr (!kObsCompiled) return out;
  const char* trace = std::getenv("WEHEY_TRACE");
  const bool trace_on = trace != nullptr && trace[0] != 0;
  const bool metrics_on = env_flag("WEHEY_METRICS") || trace_on ||
                          env_flag("WEHEY_REPORT") ||
                          env_flag("WEHEY_REPORT_DIR");
  if (!metrics_on) return out;
  out.recorder = std::make_unique<Recorder>(metrics_on, trace_on);
  if (trace_on) {
    out.trace_path = trace;
    // Bound the run-level timeline buffer; completed events spill to
    // "<trace>.chunkNNN" and re-merge at write_trace(). Unset/0 keeps the
    // historical everything-in-memory behaviour. Per-trial child
    // timelines stay in memory either way (they are small and absorb in
    // index order).
    if (const char* buf = std::getenv("WEHEY_TRACE_BUFFER_EVENTS")) {
      const long n = std::strtol(buf, nullptr, 10);
      if (n > 0) {
        out.recorder->timeline().configure_spill(
            static_cast<std::size_t>(n), out.trace_path);
      }
    }
  }
  return out;
}

std::string RunObservation::csv_path(const std::string& trace_path) {
  const std::string suffix = ".json";
  if (trace_path.size() > suffix.size() &&
      trace_path.compare(trace_path.size() - suffix.size(), suffix.size(),
                         suffix) == 0) {
    return trace_path.substr(0, trace_path.size() - suffix.size()) + ".csv";
  }
  return trace_path + ".csv";
}

bool RunObservation::write_trace() const {
  if (recorder == nullptr || trace_path.empty()) return true;
  std::FILE* json = std::fopen(trace_path.c_str(), "w");
  if (json == nullptr) return false;
  recorder->timeline().write_chrome_json(json);
  std::fclose(json);
  std::FILE* csv = std::fopen(csv_path(trace_path).c_str(), "w");
  if (csv == nullptr) return false;
  recorder->timeline().write_csv(csv);
  std::fclose(csv);
  return true;
}

}  // namespace wehey::obs
