// RunReport: the machine-readable result of one run — a session, a wild
// test, or a whole bench binary. One shared schema
// ("wehey.run_report.v2", JSON) replaces the ad-hoc JSON each bench used
// to emit:
//
//   {
//     "schema": "wehey.run_report.v2",
//     "run": "<binary or pipeline name>",
//     "seed": 2,
//     "fault_plan": "<plan name or empty>",
//     "verdict": "<outcome string>",
//     "reason": "<machine-readable reason, empty when n/a>",
//     "stages": [{"name": ..., "sim_start_us": ..., "sim_end_us": ...,
//                 "sim_ms": ..., "wall_ms": ...?}, ...],
//     "values": {"<scalar name>": <number>, ...},
//     "injection": {"total": N, "<fault kind>": N, ...},
//     "percentiles": {"<histogram>": {"p50": X, "p90": X, "p99": X}, ...},
//     "metrics": {"counters": ..., "gauges": ..., "histograms": ...}
//   }
//
// v2 adds "percentiles" (derived per non-empty histogram via
// histogram_quantile); v1 reports, which lack it, still validate against
// tools/run_report_schema.json.
//
// Determinism contract: everything except "wall_ms" is a pure function of
// the run's seeds, so the serialized report is byte-identical across
// WEHEY_THREADS. Wall-clock stage times are therefore only included when
// WEHEY_REPORT_WALL=1 (stage.wall_ms < 0 suppresses the field).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "obs/metrics.hpp"

namespace wehey::obs {

struct StageTiming {
  std::string name;
  Time sim_start = 0;
  Time sim_end = 0;
  double wall_ms = -1.0;  ///< < 0: omitted from the JSON
};

struct RunReport {
  std::string run;         ///< binary / pipeline name
  std::uint64_t seed = 0;
  std::string fault_plan;  ///< empty = fault-free
  std::string verdict;     ///< outcome string ("localized within ISP", ...)
  std::string reason;      ///< machine-readable refinement, may be empty
  std::vector<StageTiming> stages;
  /// Scalar results (retry counters, success rates, ...). Sorted on
  /// output.
  std::map<std::string, double> values;
  /// Per-fault-kind injection counts (fill with
  /// faults::InjectionStats::by_kind()); "total" is added on output.
  std::map<std::string, int> injection;

  void add_stage(std::string name, Time sim_start, Time sim_end,
                 double wall_ms = -1.0) {
    stages.push_back({std::move(name), sim_start, sim_end, wall_ms});
  }

  /// Serialize; `metrics` (usually the run recorder's registry, may be
  /// null) is embedded as the "metrics" object.
  std::string to_json(const MetricsRegistry* metrics) const;
};

/// Resolve the report output path from the environment: WEHEY_REPORT
/// (exact path) wins over WEHEY_REPORT_DIR (directory; the file is named
/// "<run>.report.json"). Empty = reporting off.
std::string report_path_from_env(const std::string& run_name);

/// Whether per-stage wall-clock times should be recorded
/// (WEHEY_REPORT_WALL=1; off by default to keep reports deterministic).
bool report_wall_times();

/// Write `json` to `path`. Returns false on I/O error.
bool write_report_file(const std::string& path, const std::string& json);

}  // namespace wehey::obs
