// RunReport: the machine-readable result of one run — a session, a wild
// test, or a whole bench binary. One shared schema
// ("wehey.run_report.v5", JSON) replaces the ad-hoc JSON each bench used
// to emit:
//
//   {
//     "schema": "wehey.run_report.v5",
//     "run": "<binary or pipeline name>",
//     "cell": "<grid-cell label, omitted when empty>",
//     "seed": 2,
//     "fault_plan": "<plan name or empty>",
//     "verdict": "<outcome string>",
//     "reason": "<machine-readable reason, empty when n/a>",
//     "decision": {"evaluated": true|false,
//                  "margin": X?,   // omitted when no verdict margin exists
//                  "detectors": [{"name": ..., "statistic": X,
//                                 "threshold": X, "margin": X,
//                                 "outcome": true|false,
//                                 "valid": true|false,
//                                 "rho": X?, "sigma_ms": X?}, ...],
//                  "aggregation": {...}?,   // Alg. 1 conservative count
//                  "degradations": ["scrub", ...]},
//     "ground_truth": {"differentiated": true|false,  // v5, optional
//                      "mechanism": "per-client-tbf" | "collective-tbf" |
//                                   "delayed-fixed-rate" | "per-flow-tbf" |
//                                   "none",
//                      "placement": "common-link" | "non-common-links" |
//                                   "none",
//                      "within_target_area": true|false,
//                      "rate_bps": X,           // 0 when no limiter
//                      "activation_bytes": N,   // 0 = immediate
//                      "sanity_check": true|false},
//     "audit": {"expected_positive": true|false,      // v5, optional
//               "observed_positive": true|false,
//               "classification": "tp"|"fp"|"fn"|"tn"|"skipped",
//               "mismatch_reason": "" | "budget-exhausted" |
//                                  "mechanism-mismatch" | "sub-margin-miss" |
//                                  "clear-miss" | "no-margin" |
//                                  "not-evaluated"},
//     "stages": [{"name": ..., "sim_start_us": ..., "sim_end_us": ...,
//                 "sim_ms": ..., "wall_ms": ...?}, ...],
//     "profile": {"<stage>": {"count": N, "sim_ms": X, "self_sim_ms": X,
//                             "wall_ms": X?, "self_wall_ms": X?}, ...},
//     "values": {"<scalar name>": <number>, ...},
//     "injection": {"total": N, "<fault kind>": N, ...},
//     "percentiles": {"<histogram>": {"p50": X, "p90": X, "p99": X}, ...},
//     "metrics": {"counters": ..., "gauges": ..., "histograms": ...}
//   }
//
// v2 added "percentiles" (derived per non-empty histogram via
// histogram_quantile); v3 adds "profile" (per-stage self time: span
// duration minus enclosed child spans) and the optional "cell" grid
// label; v4 adds "decision" — the verdict's provenance (per-detector
// statistic / threshold / signed margin, the Alg. 1 aggregation count,
// engaged degradation paths, and the run-level verdict margin the sweep
// knife-edge gate aggregates). A run that never reached analysis (budget
// exhausted, session aborted before localize) carries an empty-but-valid
// block: {"evaluated": false, "detectors": [], "degradations": []}.
// v5 adds the optional "ground_truth" ledger (what the simulator actually
// configured — a pure function of the run's configuration, no RNG) and the
// derived "audit" section (verdict vs truth -> TP/FP/FN/TN with a
// machine-readable mismatch reason that cross-references the decision
// margin). Both are emitted only by runners that know their ground truth;
// pre-v5 reports, which lack these sections, still validate against
// tools/run_report_schema.json.
//
// Determinism contract: everything except "wall_ms" is a pure function of
// the run's seeds, so the serialized report is byte-identical across
// WEHEY_THREADS. Wall-clock stage times are therefore only included when
// WEHEY_REPORT_WALL=1 (stage.wall_ms < 0 suppresses the field).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "obs/metrics.hpp"

namespace wehey::obs {

/// The report schema emitted by RunReport::to_json. The single source of
/// truth for the version string; tools/run_report_schema.json must list
/// this value in its "schema" enum (asserted by tests/test_sweep.cpp).
inline constexpr char kRunReportSchema[] = "wehey.run_report.v5";
/// Older versions this codebase still reads (wehey_cli inspect,
/// SweepAggregator::add_run_json).
inline constexpr char kRunReportSchemaPrefix[] = "wehey.run_report.";
/// Schema of the aggregated sweep report (src/obs/aggregate.hpp).
inline constexpr char kSweepReportSchema[] = "wehey.sweep_report.v1";
/// Schema of one line of a sweep checkpoint journal
/// (src/obs/checkpoint.hpp); the prefix covers future versions the
/// loader still reads.
inline constexpr char kSweepCheckpointSchema[] = "wehey.sweep_checkpoint.v1";
inline constexpr char kSweepCheckpointSchemaPrefix[] =
    "wehey.sweep_checkpoint.";

/// The verdict string every runner emits when the supervisor's per-trial
/// budget ended the run (src/parallel/supervisor.hpp). The sweep
/// aggregator's quarantine logic keys on it, so runners must use this
/// constant rather than their own spelling.
inline constexpr char kBudgetExhaustedVerdict[] = "budget exhausted";
/// Runs with this many budget-exhausted (or crash-equivalent) outcomes in
/// one cell quarantine the cell in the sweep report.
inline constexpr int kQuarantineThreshold = 2;

struct StageTiming {
  std::string name;
  Time sim_start = 0;
  Time sim_end = 0;
  double wall_ms = -1.0;  ///< < 0: omitted from the JSON
};

/// One interval on a profiling track. Spans on the same track nest by
/// interval containment (a span whose [start,end] lies inside another's
/// is its child); spans on different tracks never nest. Tracks let
/// parallel phases that all start at sim time 0 coexist without falsely
/// appearing contained in one another.
struct ProfileSpan {
  std::int64_t track = 0;
  std::string name;
  Time start = 0;
  Time end = 0;
  double wall_ms = -1.0;  ///< < 0: wall time unknown
};

/// Aggregated per-stage-name profile: total time and *self* time (total
/// minus directly enclosed child spans), on the sim clock and — when
/// every contributing span carries one — the wall clock.
struct ProfileEntry {
  std::string name;
  std::uint64_t count = 0;
  double sim_ms = 0.0;
  double self_sim_ms = 0.0;
  double wall_ms = -1.0;       ///< < 0: omitted from the JSON
  double self_wall_ms = -1.0;  ///< < 0: omitted from the JSON
};

/// Compute per-name self-time profiles from a set of spans. Deterministic:
/// the result is sorted by name and independent of the input order.
std::vector<ProfileEntry> profile_from_spans(std::vector<ProfileSpan> spans);

class Timeline;

/// Extract every complete span of a finalized timeline as a profiling
/// interval; each (pid, tid) pair becomes its own track, so absorbed
/// trials never falsely nest in one another.
std::vector<ProfileSpan> profile_spans_from_timeline(const Timeline& tl);

/// One row of the v4 "decision" section: a detector statistic, the
/// threshold it was compared against, and the signed normalized margin
/// (positive = the statistic supports the recorded outcome; |margin|
/// small = knife-edge). Mirrors core::DecisionEntry without depending on
/// core — emitters copy the fields across.
struct DecisionRow {
  std::string name;
  double statistic = 0.0;
  double threshold = 0.0;
  double margin = 0.0;
  bool outcome = false;
  bool valid = false;
  /// Loss-size rows also carry the correlation coefficient and interval
  /// size; has_rho gates both optional fields.
  bool has_rho = false;
  double rho = 0.0;
  double sigma_ms = 0.0;
};

/// The v4 "decision" section: the verdict's full evidence chain. A
/// default-constructed section serializes as the empty-but-valid block
/// required of runs that never reached analysis.
struct DecisionSection {
  bool evaluated = false;
  /// Run-level verdict margin — normalized distance to the nearest event
  /// that would flip the verdict; the sweep knife-edge gate aggregates
  /// this per cell. has_margin=false omits the field (Inconclusive or
  /// never-evaluated runs).
  bool has_margin = false;
  double margin = 0.0;
  std::vector<DecisionRow> detectors;
  /// Alg. 1 conservative aggregation (loss detector ran): correlated
  /// count vs (1 - fp) * tested.
  bool has_aggregation = false;
  std::uint64_t sizes_tested = 0;
  std::uint64_t sizes_correlated = 0;
  std::uint64_t sizes_valid = 0;
  double aggregation_threshold = 0.0;
  double aggregation_margin = 0.0;
  bool aggregation_outcome = false;
  std::vector<std::string> degradations;
};

// Canonical strings of the v5 "ground_truth" section. Emitters must use
// these constants (the schema enums list exactly these spellings).
inline constexpr char kMechanismPerClientTbf[] = "per-client-tbf";
inline constexpr char kMechanismCollectiveTbf[] = "collective-tbf";
inline constexpr char kMechanismDelayedFixedRate[] = "delayed-fixed-rate";
inline constexpr char kMechanismPerFlowTbf[] = "per-flow-tbf";
inline constexpr char kMechanismNone[] = "none";
inline constexpr char kPlacementCommonLink[] = "common-link";
inline constexpr char kPlacementNonCommonLinks[] = "non-common-links";
inline constexpr char kPlacementNone[] = "none";

/// The v5 "ground_truth" ledger: what the simulator actually configured
/// for this run. A pure function of the run's configuration — no RNG, no
/// measurement — so it is byte-identical across WEHEY_THREADS and
/// trivially reproducible from the run's seed. present=false omits the
/// section entirely (pre-v5 emitters, bench binaries without a scenario).
struct GroundTruthSection {
  bool present = false;
  /// A rate limiter exists somewhere on the client's paths.
  bool differentiated = false;
  /// kMechanism* string: what kind of throttler was installed.
  std::string mechanism = kMechanismNone;
  /// kPlacement* string: where relative to the two-path convergence point.
  std::string placement = kPlacementNone;
  /// The throttler sits at/behind the convergence point — i.e. inside the
  /// area WeHeY's verdict claims to localize to. NonCommonLinks
  /// configurations are differentiated but NOT within the target area.
  bool within_target_area = false;
  double rate_bps = 0.0;  ///< configured token rate; 0 = no limiter
  /// Bytes before a delayed throttler activates (ISP5); 0 = immediate.
  std::int64_t activation_bytes = 0;
  /// §5 sanity check: a third concurrent flow shares the limiter, so a
  /// per-client verdict is the WRONG answer even though the limiter is
  /// per-client by configuration.
  bool sanity_check = false;
};

/// The v5 "audit" section: the run's verdict judged against its ground
/// truth. Derived deterministically by classify_audit; present=false
/// omits the section (runs without a ground truth cannot be audited).
struct AuditSection {
  bool present = false;
  /// What a perfect localizer should have concluded for this run.
  bool expected_positive = false;
  /// What this run's verdict actually concluded.
  bool observed_positive = false;
  /// "tp" | "fp" | "fn" | "tn" | "skipped" (budget-exhausted runs carry
  /// no analyzable verdict and are excluded from accuracy ratios).
  std::string classification;
  /// Machine-readable reason when observed != expected (empty on match):
  /// "budget-exhausted", "mechanism-mismatch" (verdict localized but the
  /// wrong throttling mechanism), "sub-margin-miss" (|decision margin| <
  /// WEHEY_KNIFE_EDGE_MARGIN — a knife-edge miss, flagged not failed),
  /// "clear-miss", "no-margin", "not-evaluated".
  std::string mismatch_reason;
};

/// Classify a verdict against its ground truth. `observed_positive` is the
/// runner's success predicate (e.g. localized AND per-client mechanism for
/// the Table-1 wild tests); `mechanism_mismatch` marks a localized verdict
/// that named the wrong mechanism; `budget_exhausted` runs classify as
/// "skipped". The mismatch reason cross-references `decision`: a miss
/// whose |margin| is under WEHEY_KNIFE_EDGE_MARGIN is "sub-margin-miss"
/// (knife-edge, flagged not failed by the sweep gate). Pure function of
/// its inputs plus that env knob — deterministic across WEHEY_THREADS.
AuditSection classify_audit(const GroundTruthSection& truth,
                            bool observed_positive, bool mechanism_mismatch,
                            bool budget_exhausted,
                            const DecisionSection& decision);

struct RunReport {
  std::string run;         ///< binary / pipeline name
  std::string cell;        ///< grid-cell label ("ISP1", "Zoom", ...); may be
                           ///< empty (omitted from the JSON)
  std::uint64_t seed = 0;
  std::string fault_plan;  ///< empty = fault-free
  std::string verdict;     ///< outcome string ("localized within ISP", ...)
  std::string reason;      ///< machine-readable refinement, may be empty
  /// v4: why the verdict is what it is. Always emitted; the default-
  /// constructed value is the empty-but-valid block.
  DecisionSection decision;
  /// v5: what the simulator configured (omitted while !present).
  GroundTruthSection ground_truth;
  /// v5: verdict vs ground truth (omitted while !present).
  AuditSection audit;
  std::vector<StageTiming> stages;
  /// v3: per-stage self-time profile (see profile_from_spans). Always
  /// emitted, possibly empty.
  std::vector<ProfileEntry> profile;
  /// Scalar results (retry counters, success rates, ...). Sorted on
  /// output.
  std::map<std::string, double> values;
  /// Per-fault-kind injection counts (fill with
  /// faults::InjectionStats::by_kind()); "total" is added on output.
  std::map<std::string, int> injection;

  void add_stage(std::string name, Time sim_start, Time sim_end,
                 double wall_ms = -1.0) {
    stages.push_back({std::move(name), sim_start, sim_end, wall_ms});
  }

  /// Serialize; `metrics` (usually the run recorder's registry, may be
  /// null) is embedded as the "metrics" object.
  std::string to_json(const MetricsRegistry* metrics) const;
};

/// How reports are written at the end of a sweep (WEHEY_REPORT_MODE):
///   per-run (default) — one RunReport file per run, as before;
///   sweep             — only the aggregated wehey.sweep_report.v1 file;
///   both              — per-run files plus the aggregate.
enum class ReportMode { kPerRun, kSweep, kBoth };

/// Parse WEHEY_REPORT_MODE ("per-run" | "sweep" | "both"; default
/// per-run; unknown values fall back to per-run).
ReportMode report_mode_from_env();

/// Resolve the report output path from the environment: WEHEY_REPORT
/// (exact path) wins over WEHEY_REPORT_DIR (directory; the file is named
/// "<run>.report.json"). Empty = reporting off.
std::string report_path_from_env(const std::string& run_name);

/// Resolve the sweep-report output path. In mode "sweep", WEHEY_REPORT
/// names the sweep file directly; in mode "both" it names the per-run
/// file and the sweep lands next to it at "<WEHEY_REPORT>.sweep.json".
/// Under WEHEY_REPORT_DIR the sweep file is "<run>.sweep.json". Empty =
/// reporting off.
std::string sweep_path_from_env(const std::string& run_name);

/// Whether per-stage wall-clock times should be recorded
/// (WEHEY_REPORT_WALL=1; off by default to keep reports deterministic).
bool report_wall_times();

/// Write `json` to `path`. Returns false on I/O error.
bool write_report_file(const std::string& path, const std::string& json);

}  // namespace wehey::obs
