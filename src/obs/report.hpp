// RunReport: the machine-readable result of one run — a session, a wild
// test, or a whole bench binary. One shared schema
// ("wehey.run_report.v4", JSON) replaces the ad-hoc JSON each bench used
// to emit:
//
//   {
//     "schema": "wehey.run_report.v4",
//     "run": "<binary or pipeline name>",
//     "cell": "<grid-cell label, omitted when empty>",
//     "seed": 2,
//     "fault_plan": "<plan name or empty>",
//     "verdict": "<outcome string>",
//     "reason": "<machine-readable reason, empty when n/a>",
//     "decision": {"evaluated": true|false,
//                  "margin": X?,   // omitted when no verdict margin exists
//                  "detectors": [{"name": ..., "statistic": X,
//                                 "threshold": X, "margin": X,
//                                 "outcome": true|false,
//                                 "valid": true|false,
//                                 "rho": X?, "sigma_ms": X?}, ...],
//                  "aggregation": {...}?,   // Alg. 1 conservative count
//                  "degradations": ["scrub", ...]},
//     "stages": [{"name": ..., "sim_start_us": ..., "sim_end_us": ...,
//                 "sim_ms": ..., "wall_ms": ...?}, ...],
//     "profile": {"<stage>": {"count": N, "sim_ms": X, "self_sim_ms": X,
//                             "wall_ms": X?, "self_wall_ms": X?}, ...},
//     "values": {"<scalar name>": <number>, ...},
//     "injection": {"total": N, "<fault kind>": N, ...},
//     "percentiles": {"<histogram>": {"p50": X, "p90": X, "p99": X}, ...},
//     "metrics": {"counters": ..., "gauges": ..., "histograms": ...}
//   }
//
// v2 added "percentiles" (derived per non-empty histogram via
// histogram_quantile); v3 adds "profile" (per-stage self time: span
// duration minus enclosed child spans) and the optional "cell" grid
// label; v4 adds "decision" — the verdict's provenance (per-detector
// statistic / threshold / signed margin, the Alg. 1 aggregation count,
// engaged degradation paths, and the run-level verdict margin the sweep
// knife-edge gate aggregates). A run that never reached analysis (budget
// exhausted, session aborted before localize) carries an empty-but-valid
// block: {"evaluated": false, "detectors": [], "degradations": []}.
// v1-v3 reports, which lack these sections, still validate against
// tools/run_report_schema.json.
//
// Determinism contract: everything except "wall_ms" is a pure function of
// the run's seeds, so the serialized report is byte-identical across
// WEHEY_THREADS. Wall-clock stage times are therefore only included when
// WEHEY_REPORT_WALL=1 (stage.wall_ms < 0 suppresses the field).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "obs/metrics.hpp"

namespace wehey::obs {

/// The report schema emitted by RunReport::to_json. The single source of
/// truth for the version string; tools/run_report_schema.json must list
/// this value in its "schema" enum (asserted by tests/test_sweep.cpp).
inline constexpr char kRunReportSchema[] = "wehey.run_report.v4";
/// Older versions this codebase still reads (wehey_cli inspect,
/// SweepAggregator::add_run_json).
inline constexpr char kRunReportSchemaPrefix[] = "wehey.run_report.";
/// Schema of the aggregated sweep report (src/obs/aggregate.hpp).
inline constexpr char kSweepReportSchema[] = "wehey.sweep_report.v1";
/// Schema of one line of a sweep checkpoint journal
/// (src/obs/checkpoint.hpp); the prefix covers future versions the
/// loader still reads.
inline constexpr char kSweepCheckpointSchema[] = "wehey.sweep_checkpoint.v1";
inline constexpr char kSweepCheckpointSchemaPrefix[] =
    "wehey.sweep_checkpoint.";

/// The verdict string every runner emits when the supervisor's per-trial
/// budget ended the run (src/parallel/supervisor.hpp). The sweep
/// aggregator's quarantine logic keys on it, so runners must use this
/// constant rather than their own spelling.
inline constexpr char kBudgetExhaustedVerdict[] = "budget exhausted";
/// Runs with this many budget-exhausted (or crash-equivalent) outcomes in
/// one cell quarantine the cell in the sweep report.
inline constexpr int kQuarantineThreshold = 2;

struct StageTiming {
  std::string name;
  Time sim_start = 0;
  Time sim_end = 0;
  double wall_ms = -1.0;  ///< < 0: omitted from the JSON
};

/// One interval on a profiling track. Spans on the same track nest by
/// interval containment (a span whose [start,end] lies inside another's
/// is its child); spans on different tracks never nest. Tracks let
/// parallel phases that all start at sim time 0 coexist without falsely
/// appearing contained in one another.
struct ProfileSpan {
  std::int64_t track = 0;
  std::string name;
  Time start = 0;
  Time end = 0;
  double wall_ms = -1.0;  ///< < 0: wall time unknown
};

/// Aggregated per-stage-name profile: total time and *self* time (total
/// minus directly enclosed child spans), on the sim clock and — when
/// every contributing span carries one — the wall clock.
struct ProfileEntry {
  std::string name;
  std::uint64_t count = 0;
  double sim_ms = 0.0;
  double self_sim_ms = 0.0;
  double wall_ms = -1.0;       ///< < 0: omitted from the JSON
  double self_wall_ms = -1.0;  ///< < 0: omitted from the JSON
};

/// Compute per-name self-time profiles from a set of spans. Deterministic:
/// the result is sorted by name and independent of the input order.
std::vector<ProfileEntry> profile_from_spans(std::vector<ProfileSpan> spans);

class Timeline;

/// Extract every complete span of a finalized timeline as a profiling
/// interval; each (pid, tid) pair becomes its own track, so absorbed
/// trials never falsely nest in one another.
std::vector<ProfileSpan> profile_spans_from_timeline(const Timeline& tl);

/// One row of the v4 "decision" section: a detector statistic, the
/// threshold it was compared against, and the signed normalized margin
/// (positive = the statistic supports the recorded outcome; |margin|
/// small = knife-edge). Mirrors core::DecisionEntry without depending on
/// core — emitters copy the fields across.
struct DecisionRow {
  std::string name;
  double statistic = 0.0;
  double threshold = 0.0;
  double margin = 0.0;
  bool outcome = false;
  bool valid = false;
  /// Loss-size rows also carry the correlation coefficient and interval
  /// size; has_rho gates both optional fields.
  bool has_rho = false;
  double rho = 0.0;
  double sigma_ms = 0.0;
};

/// The v4 "decision" section: the verdict's full evidence chain. A
/// default-constructed section serializes as the empty-but-valid block
/// required of runs that never reached analysis.
struct DecisionSection {
  bool evaluated = false;
  /// Run-level verdict margin — normalized distance to the nearest event
  /// that would flip the verdict; the sweep knife-edge gate aggregates
  /// this per cell. has_margin=false omits the field (Inconclusive or
  /// never-evaluated runs).
  bool has_margin = false;
  double margin = 0.0;
  std::vector<DecisionRow> detectors;
  /// Alg. 1 conservative aggregation (loss detector ran): correlated
  /// count vs (1 - fp) * tested.
  bool has_aggregation = false;
  std::uint64_t sizes_tested = 0;
  std::uint64_t sizes_correlated = 0;
  std::uint64_t sizes_valid = 0;
  double aggregation_threshold = 0.0;
  double aggregation_margin = 0.0;
  bool aggregation_outcome = false;
  std::vector<std::string> degradations;
};

struct RunReport {
  std::string run;         ///< binary / pipeline name
  std::string cell;        ///< grid-cell label ("ISP1", "Zoom", ...); may be
                           ///< empty (omitted from the JSON)
  std::uint64_t seed = 0;
  std::string fault_plan;  ///< empty = fault-free
  std::string verdict;     ///< outcome string ("localized within ISP", ...)
  std::string reason;      ///< machine-readable refinement, may be empty
  /// v4: why the verdict is what it is. Always emitted; the default-
  /// constructed value is the empty-but-valid block.
  DecisionSection decision;
  std::vector<StageTiming> stages;
  /// v3: per-stage self-time profile (see profile_from_spans). Always
  /// emitted, possibly empty.
  std::vector<ProfileEntry> profile;
  /// Scalar results (retry counters, success rates, ...). Sorted on
  /// output.
  std::map<std::string, double> values;
  /// Per-fault-kind injection counts (fill with
  /// faults::InjectionStats::by_kind()); "total" is added on output.
  std::map<std::string, int> injection;

  void add_stage(std::string name, Time sim_start, Time sim_end,
                 double wall_ms = -1.0) {
    stages.push_back({std::move(name), sim_start, sim_end, wall_ms});
  }

  /// Serialize; `metrics` (usually the run recorder's registry, may be
  /// null) is embedded as the "metrics" object.
  std::string to_json(const MetricsRegistry* metrics) const;
};

/// How reports are written at the end of a sweep (WEHEY_REPORT_MODE):
///   per-run (default) — one RunReport file per run, as before;
///   sweep             — only the aggregated wehey.sweep_report.v1 file;
///   both              — per-run files plus the aggregate.
enum class ReportMode { kPerRun, kSweep, kBoth };

/// Parse WEHEY_REPORT_MODE ("per-run" | "sweep" | "both"; default
/// per-run; unknown values fall back to per-run).
ReportMode report_mode_from_env();

/// Resolve the report output path from the environment: WEHEY_REPORT
/// (exact path) wins over WEHEY_REPORT_DIR (directory; the file is named
/// "<run>.report.json"). Empty = reporting off.
std::string report_path_from_env(const std::string& run_name);

/// Resolve the sweep-report output path. In mode "sweep", WEHEY_REPORT
/// names the sweep file directly; in mode "both" it names the per-run
/// file and the sweep lands next to it at "<WEHEY_REPORT>.sweep.json".
/// Under WEHEY_REPORT_DIR the sweep file is "<run>.sweep.json". Empty =
/// reporting off.
std::string sweep_path_from_env(const std::string& run_name);

/// Whether per-stage wall-clock times should be recorded
/// (WEHEY_REPORT_WALL=1; off by default to keep reports deterministic).
bool report_wall_times();

/// Write `json` to `path`. Returns false on I/O error.
bool write_report_file(const std::string& path, const std::string& json);

}  // namespace wehey::obs
