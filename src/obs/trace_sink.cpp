#include "obs/trace_sink.hpp"

#include <cstdio>
#include <cstring>

namespace wehey::obs {

namespace {

// Chunk framing, per event:
//   u8  kind
//   i64 at, i64 duration
//   i32 pid, i32 tid
//   u32 len + bytes, three times (name, category, args)
// Host byte order: a chunk is written and read back by the same process.

bool write_string(std::FILE* f, const std::string& s) {
  const std::uint32_t len = static_cast<std::uint32_t>(s.size());
  if (std::fwrite(&len, sizeof(len), 1, f) != 1) return false;
  return len == 0 || std::fwrite(s.data(), 1, len, f) == len;
}

bool read_string(std::FILE* f, std::string& s) {
  std::uint32_t len = 0;
  if (std::fread(&len, sizeof(len), 1, f) != 1) return false;
  s.resize(len);
  return len == 0 || std::fread(s.data(), 1, len, f) == len;
}

bool write_event(std::FILE* f, const TimelineEvent& ev) {
  const std::uint8_t kind = static_cast<std::uint8_t>(ev.kind);
  const std::int64_t at = ev.at;
  const std::int64_t duration = ev.duration;
  return std::fwrite(&kind, sizeof(kind), 1, f) == 1 &&
         std::fwrite(&at, sizeof(at), 1, f) == 1 &&
         std::fwrite(&duration, sizeof(duration), 1, f) == 1 &&
         std::fwrite(&ev.pid, sizeof(ev.pid), 1, f) == 1 &&
         std::fwrite(&ev.tid, sizeof(ev.tid), 1, f) == 1 &&
         write_string(f, ev.name) && write_string(f, ev.category) &&
         write_string(f, ev.args);
}

bool read_event(std::FILE* f, TimelineEvent& ev) {
  std::uint8_t kind = 0;
  if (std::fread(&kind, sizeof(kind), 1, f) != 1) return false;  // clean EOF
  std::int64_t at = 0;
  std::int64_t duration = 0;
  if (std::fread(&at, sizeof(at), 1, f) != 1 ||
      std::fread(&duration, sizeof(duration), 1, f) != 1 ||
      std::fread(&ev.pid, sizeof(ev.pid), 1, f) != 1 ||
      std::fread(&ev.tid, sizeof(ev.tid), 1, f) != 1 ||
      !read_string(f, ev.name) || !read_string(f, ev.category) ||
      !read_string(f, ev.args)) {
    return false;
  }
  ev.kind = static_cast<TimelineEvent::Kind>(kind);
  ev.at = at;
  ev.duration = duration;
  return true;
}

}  // namespace

TraceSink::~TraceSink() { remove_chunks(); }

TraceSink::TraceSink(TraceSink&& other) noexcept
    : buffer_(std::move(other.buffer_)),
      capacity_(other.capacity_),
      chunk_base_(std::move(other.chunk_base_)),
      chunks_(other.chunks_),
      spilled_(other.spilled_) {
  // The moved-from sink must not delete the chunk files it handed over.
  other.buffer_.clear();
  other.chunk_base_.clear();
  other.chunks_ = 0;
  other.spilled_ = 0;
}

TraceSink& TraceSink::operator=(TraceSink&& other) noexcept {
  if (this == &other) return *this;
  remove_chunks();
  buffer_ = std::move(other.buffer_);
  capacity_ = other.capacity_;
  chunk_base_ = std::move(other.chunk_base_);
  chunks_ = other.chunks_;
  spilled_ = other.spilled_;
  other.buffer_.clear();
  other.chunk_base_.clear();
  other.chunks_ = 0;
  other.spilled_ = 0;
  return *this;
}

void TraceSink::configure(std::size_t capacity_events,
                          std::string chunk_base) {
  capacity_ = capacity_events;
  chunk_base_ = std::move(chunk_base);
}

std::string TraceSink::chunk_path(const std::string& base,
                                  std::size_t index) {
  char suffix[24];
  std::snprintf(suffix, sizeof(suffix), ".chunk%03zu", index);
  return base + suffix;
}

void TraceSink::append(TimelineEvent ev) {
  buffer_.push_back(std::move(ev));
  if (spilling() && buffer_.size() >= capacity_) flush_chunk();
}

void TraceSink::flush_chunk() {
  std::FILE* f = std::fopen(chunk_path(chunk_base_, chunks_).c_str(), "wb");
  if (f == nullptr) return;  // keep buffering in memory; trace still valid
  bool ok = true;
  for (const auto& ev : buffer_) ok = ok && write_event(f, ev);
  ok = std::fclose(f) == 0 && ok;
  if (!ok) {
    std::remove(chunk_path(chunk_base_, chunks_).c_str());
    return;
  }
  spilled_ += buffer_.size();
  ++chunks_;
  buffer_.clear();
}

bool TraceSink::for_each(
    const std::function<void(const TimelineEvent&)>& fn) const {
  for (std::size_t i = 0; i < chunks_; ++i) {
    std::FILE* f = std::fopen(chunk_path(chunk_base_, i).c_str(), "rb");
    if (f == nullptr) return false;
    TimelineEvent ev;
    while (read_event(f, ev)) fn(ev);
    const bool clean_eof = std::feof(f) != 0;
    std::fclose(f);
    if (!clean_eof) return false;
  }
  for (const auto& ev : buffer_) fn(ev);
  return true;
}

void TraceSink::remove_chunks() {
  for (std::size_t i = 0; i < chunks_; ++i) {
    std::remove(chunk_path(chunk_base_, i).c_str());
  }
  chunks_ = 0;
  spilled_ = 0;
}

void TraceSink::clear() {
  buffer_.clear();
  remove_chunks();
}

}  // namespace wehey::obs
