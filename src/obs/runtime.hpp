// Engine runtime telemetry: a wall-clock profiler for the execution
// engine itself (thread pool, trial runners, allocator high-water marks)
// plus a live sweep progress meter.
//
// Everything in this header observes the *engine* on the *wall* clock —
// the opposite of every other obs component, which observes the
// *simulation* on the *sim* clock. Wall-clock data is inherently
// nondeterministic, so none of it may ever reach the byte-identical
// RunReport / sweep-report contract: the profiler serializes into its own
// `wehey.runtime_report.v1` sidecar (WEHEY_RUNTIME_REPORT=<path>), and the
// progress meter writes only to stderr.
//
// Cost model, mirroring hotpath.hpp:
//
//   * disabled (the default): every hook is one relaxed atomic load and a
//     branch;
//   * -DWEHEY_OBS=OFF: runtime::enabled() is a constant false, so guarded
//     hooks fold away entirely;
//   * enabled (WEHEY_RUNTIME_REPORT set, or set_enabled(true)): per-thread
//     slots with relaxed atomic counters — writers never share a cache
//     line with other writers' hot fields, and the only synchronization is
//     the one-time slot registration.
//
// Deterministic-count contract: the *count* fields (tasks executed, trials
// run, jobs submitted) are pure functions of the workload, so they are
// exactly equal across WEHEY_THREADS settings — the parallel engine counts
// them on its serial fallback paths too. The *time* fields (busy/idle/wait,
// latency histograms, RSS) are wall-clock and only comparable as ranges.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace wehey::obs {

/// Schema tag of the runtime sidecar document (see report.hpp for the
/// deterministic report schemas). tools/runtime_report_schema.json must
/// name this value (asserted by tests/test_sweep.cpp).
inline constexpr char kRuntimeReportSchema[] = "wehey.runtime_report.v1";
inline constexpr char kRuntimeReportSchemaPrefix[] = "wehey.runtime_report.";

namespace runtime {

// ------------------------------------------------------------ cheap gate

#ifdef WEHEY_OBS_DISABLED
inline constexpr bool enabled() { return false; }
#else
namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
#endif

/// Turn the profiler on/off at runtime. No-op under -DWEHEY_OBS=OFF.
void set_enabled(bool on);

/// Enable the profiler iff WEHEY_RUNTIME_REPORT is set (to a non-empty,
/// non-"0" value). Returns the resulting enabled() state. Idempotent — the
/// counters are NOT reset, so late callers don't erase earlier samples.
bool enable_from_env();

/// Zero every counter, histogram and watermark and restart the profiler's
/// wall clock. Bench loops call this between measured phases.
void reset();

/// Monotonic nanoseconds for hook call sites (steady_clock).
inline std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// ------------------------------------------------------- engine hooks
//
// All hooks are no-ops while !enabled(); call sites in the parallel
// engine additionally guard with `if (runtime::enabled())` so the
// timestamp reads fold away too.

enum class ThreadKind { kCaller, kWorker };

/// Thread-slot registration happens lazily inside the note_* hooks; this
/// forces it up front (e.g. from worker_loop) so the first sample isn't
/// charged the registration mutex.
void register_thread(ThreadKind kind);

/// A pool worker spent `ns` parked in the work queue's condition wait.
void note_idle(std::uint64_t ns);

/// The calling thread spent `ns` draining a parallel_for (waiting for the
/// last workers to leave run_chunks after its own chunks ran out).
void note_drain_wait(std::uint64_t ns);

/// One claimed chunk of a broadcast job ran for `ns`, executing `tasks`
/// loop iterations on this thread.
void note_chunk(std::uint64_t ns, std::uint64_t tasks);

/// A broadcast job with `n` pending iterations was submitted to the pool.
/// Tracks the job count and the queue-depth high-water mark.
void note_job(std::size_t n);

/// First pickup of a job by a worker: wall latency from parallel_for's
/// submit to this worker's first chunk claim.
void note_submit_to_start(std::uint64_t ns);

/// `n` loop iterations ran serially on the calling thread (the engine's
/// serial fallback paths), taking `ns` overall. Keeps the task count
/// exact across thread counts.
void note_serial_tasks(std::uint64_t n, std::uint64_t ns);

/// One parallel_map trial finished, `wall_ms` of wall time. Counted on
/// both the pooled and the serial path, so trials.count is exact across
/// thread counts.
void note_trial(double wall_ms);

/// The supervisor installed a per-trial budget on a simulator — i.e. one
/// budgeted trial simulator came up. Deterministic count.
void note_trial_supervised();

/// The EventHeap slot pool grew by one chunk of `bytes` bytes. Rare
/// (pool growth only), so the counting-allocator hook is a plain call.
void note_event_heap_chunk(std::size_t bytes);

// Busy-region nesting. A trial body that reaches a nested parallel_map /
// parallel_for runs it serially in place (t_in_parallel_region), so the
// nested loop re-walks nanoseconds the enclosing chunk is already timing.
// Busy wall time is therefore charged only by the *outermost* executing
// region on a thread — without the bracket, parallel_efficiency could
// exceed 1.0. Task/chunk counts are charged at every depth (they are the
// deterministic fields and nested iterations are real work items).
void busy_enter();
void busy_exit();

/// RAII bracket around one executing region (a chunk-claim loop or a
/// serial fallback loop). Gating on enabled() at construction keeps the
/// bracket balanced even if the profiler is toggled mid-region, and folds
/// the whole class away under -DWEHEY_OBS=OFF.
class ScopedBusy {
 public:
  ScopedBusy() : active_(enabled()) {
    if (active_) busy_enter();
  }
  ~ScopedBusy() {
    if (active_) busy_exit();
  }
  ScopedBusy(const ScopedBusy&) = delete;
  ScopedBusy& operator=(const ScopedBusy&) = delete;

 private:
  bool active_;
};

// ---------------------------------------------------------- snapshot

/// Fixed-layout copy of an atomic latency histogram: `bins` holds
/// underflow + buckets + overflow, like obs::Histogram.
struct HistSnapshot {
  double lo = 0.0;
  double hi = 0.0;
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::vector<std::uint64_t> bins;
};

struct WorkerSnapshot {
  int id = 0;
  ThreadKind kind = ThreadKind::kCaller;
  double busy_ms = 0.0;   ///< inside run_chunks / serial loops
  double idle_ms = 0.0;   ///< parked in the pool's condition wait
  double wait_ms = 0.0;   ///< caller-side drain waits
  std::uint64_t chunks = 0;
  std::uint64_t tasks = 0;
};

struct RuntimeSnapshot {
  double wall_seconds = 0.0;  ///< since enable/reset
  unsigned configured_threads = 0;
  unsigned hardware_threads = 0;
  std::vector<WorkerSnapshot> workers;  ///< threads that recorded anything

  // Scheduler totals and derived efficiency metrics.
  std::uint64_t jobs = 0;
  std::uint64_t tasks = 0;  ///< deterministic: exact across thread counts
  std::uint64_t queue_depth_high_water = 0;
  std::uint64_t drain_waits = 0;  ///< caller drain waits (== pooled jobs)
  HistSnapshot submit_to_start_us;
  /// Sum(busy) / (contexts * wall): 1.0 = every context busy the whole
  /// window. 0 when no context recorded anything.
  double parallel_efficiency = 0.0;
  /// max(busy) / mean(busy) over contexts with busy > 0; 1.0 = perfectly
  /// balanced (and when <= 1 context ran).
  double worker_imbalance = 1.0;
  /// Sum(drain wait) / Sum(busy + idle + drain wait).
  double wait_fraction = 0.0;
  /// Sum(worker idle) / Sum(busy + idle + drain wait).
  double idle_fraction = 0.0;

  // Trial accounting (parallel_map / supervisor).
  std::uint64_t trials = 0;  ///< deterministic: exact across thread counts
  std::uint64_t trials_supervised = 0;  ///< budgeted simulators brought up
  HistSnapshot trial_wall_ms;

  // Process-level resources.
  std::uint64_t event_heap_chunks = 0;
  std::uint64_t event_heap_bytes = 0;
  std::uint64_t rss_peak_kb = 0;  ///< VmHWM; 0 where /proc is unavailable
};

/// Consistent-enough copy of all counters (relaxed reads — take it when
/// the engine is quiescent for exact numbers).
RuntimeSnapshot snapshot();

/// Serialize a snapshot as a wehey.runtime_report.v1 document.
std::string runtime_report_json(const RuntimeSnapshot& snap,
                                const std::string& run_name);

/// The sidecar output path: WEHEY_RUNTIME_REPORT (empty / "0" = off).
std::string runtime_report_path_from_env();

/// Write the current snapshot to the WEHEY_RUNTIME_REPORT path, if set
/// and the profiler is enabled. Returns false only on I/O error.
bool write_runtime_report_from_env(const std::string& run_name);

}  // namespace runtime

// ------------------------------------------------------ progress meter

/// Live sweep progress heartbeat on stderr (WEHEY_PROGRESS=off|plain|tty,
/// default off), rate-limited to ~1 line/s. Tracks completed/total runs,
/// throughput, ETA, resumed-from-checkpoint, quarantine (budget-exhausted
/// verdicts) and knife-edge (|decision margin| under the gate threshold)
/// counts. finish() prints a final one-line wall-clock summary even in
/// mode "off", so CI logs capture sweep throughput without parsing JSON.
class ProgressMeter {
 public:
  enum class Mode { kOff, kPlain, kTty };

  /// Reads WEHEY_PROGRESS. `label` prefixes every line.
  explicit ProgressMeter(std::string label);

  /// Total runs the sweep will absorb (0 = unknown; no ETA then).
  void expect(std::size_t total) { total_ = total; }

  /// One run re-absorbed from a checkpoint journal (did not execute).
  void note_resumed() {
    ++resumed_;
    note_done("", false, 0.0);
  }

  /// One run executed. `has_margin`/`margin` come from the run's decision
  /// section; the knife-edge tally uses the same threshold as the sweep
  /// aggregator (WEHEY_KNIFE_EDGE_MARGIN).
  void note_run(const std::string& verdict, bool has_margin, double margin) {
    note_done(verdict, has_margin, margin);
  }

  /// Print the final summary line (total runs, wall seconds, runs/sec,
  /// resumed count) — always, even in mode off, when any run was seen.
  void finish();

  Mode mode() const { return mode_; }
  std::size_t completed() const { return completed_; }
  std::size_t resumed() const { return resumed_; }
  std::size_t quarantined() const { return quarantined_; }
  std::size_t knife_edge() const { return knife_edge_; }

 private:
  void note_done(const std::string& verdict, bool has_margin, double margin);
  void maybe_print(bool force);

  std::string label_;
  Mode mode_ = Mode::kOff;
  std::size_t total_ = 0;
  std::size_t completed_ = 0;
  std::size_t resumed_ = 0;
  std::size_t quarantined_ = 0;
  std::size_t knife_edge_ = 0;
  double knife_edge_threshold_ = 0.0;
  bool finished_ = false;
  bool line_open_ = false;  ///< tty mode: last write was a \r line
  std::chrono::steady_clock::time_point start_;
  std::chrono::steady_clock::time_point last_print_;
};

}  // namespace wehey::obs
