// The observability entry point: a Recorder bundles one MetricsRegistry
// and one Timeline, and a thread-local *scope* makes the active recorder
// reachable from instrumented code anywhere in the stack without plumbing
// a pointer through every layer.
//
// Threading/determinism model:
//
//   * a Recorder is owned by one execution context at a time — no locks,
//     no atomics on the hot path;
//   * the parallel engine (parallel_map) gives every trial its own child
//     Recorder, bound around the trial body on whichever worker runs it,
//     and absorbs the children into the parent *in index order* after the
//     loop — so merged metrics and traces are bit-identical across
//     WEHEY_THREADS=1/4/16;
//   * when no recorder is bound (the default), every instrumentation hook
//     is a thread-local load + branch — near-zero cost. Building with
//     -DWEHEY_OBS=OFF compiles the hooks out entirely (Recorder::current()
//     becomes a constant nullptr and guarded code folds away).
//
// Run-level setup is RunObservation::from_env(): it reads
//   WEHEY_METRICS=1    — collect metrics (implied by the other two),
//   WEHEY_TRACE=path   — record a timeline; written as Chrome-trace JSON
//                        at `path` plus a CSV sibling,
//   WEHEY_TRACE_BUFFER_EVENTS=N — keep at most N completed events in
//                        memory, spilling full chunks to
//                        "<path>.chunkNNN" and re-merging them, in order,
//                        when the trace is written (unset/0 = unbounded
//                        in-memory buffering, the historical behaviour),
//   WEHEY_REPORT=path / WEHEY_REPORT_DIR=dir — emit a RunReport (see
//                        report.hpp; the bench_util writer drives this).
#pragma once

#include <memory>
#include <string>

#include "obs/metrics.hpp"
#include "obs/timeline.hpp"

namespace wehey::obs {

/// Compile-time master switch (CMake option WEHEY_OBS, default ON).
#ifdef WEHEY_OBS_DISABLED
inline constexpr bool kObsCompiled = false;
#else
inline constexpr bool kObsCompiled = true;
#endif

class Recorder {
 public:
  Recorder(bool metrics_on, bool trace_on)
      : metrics_on_(metrics_on), trace_on_(trace_on) {}

  bool metrics_on() const { return metrics_on_; }
  bool trace_on() const { return trace_on_; }

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  Timeline& timeline() { return timeline_; }
  const Timeline& timeline() const { return timeline_; }

  /// A child with the same enablement, for one trial of a parallel loop.
  Recorder child() const { return Recorder(metrics_on_, trace_on_); }

  /// Fold a finished child back in: metrics merge, timeline events append
  /// under the next pid track (named `track` if non-empty). Call in a
  /// deterministic order (the parallel engine absorbs by trial index).
  void absorb(Recorder&& c, const std::string& track = {});

  /// The recorder bound to the current thread, or nullptr. All
  /// instrumentation is gated on this.
  static Recorder* current();

 private:
  bool metrics_on_ = false;
  bool trace_on_ = false;
  MetricsRegistry metrics_;
  Timeline timeline_;
};

/// Binds a recorder to the current thread for a lexical scope; restores
/// the previous binding on destruction. Binding nullptr disables
/// observation inside the scope.
class ScopedRecorder {
 public:
  explicit ScopedRecorder(Recorder* r);
  ~ScopedRecorder();
  ScopedRecorder(const ScopedRecorder&) = delete;
  ScopedRecorder& operator=(const ScopedRecorder&) = delete;

 private:
  Recorder* prev_;
};

/// Process-level observation for one run (a bench binary, a test, a CLI
/// invocation), configured from the environment.
struct RunObservation {
  std::unique_ptr<Recorder> recorder;  ///< null when everything is off
  std::string trace_path;              ///< WEHEY_TRACE (empty = off)

  bool enabled() const { return recorder != nullptr; }

  static RunObservation from_env();

  /// Write the timeline artifacts (Chrome JSON at trace_path, CSV at the
  /// sibling path). No-op when tracing is off. Returns false on I/O error.
  bool write_trace() const;

  /// The CSV sibling of a trace path ("x.json" -> "x.csv", else "x.csv"
  /// appended).
  static std::string csv_path(const std::string& trace_path);
};

}  // namespace wehey::obs
