#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace wehey::obs {

Histogram::Histogram(double lo, double hi, int buckets)
    : lo_(lo),
      hi_(hi),
      width_((hi - lo) / (buckets > 0 ? buckets : 1)),
      bins_(static_cast<std::size_t>(buckets > 0 ? buckets : 1) + 2, 0) {}

void Histogram::observe(double v) {
  if (count_ == 0 || v < min_) min_ = v;
  if (count_ == 0 || v > max_) max_ = v;
  ++count_;
  sum_ += v;
  std::size_t bin;
  if (v < lo_) {
    bin = 0;
  } else if (v >= hi_) {
    bin = bins_.size() - 1;
  } else {
    bin = 1 + static_cast<std::size_t>((v - lo_) / width_);
    if (bin >= bins_.size() - 1) bin = bins_.size() - 2;  // fp edge
  }
  ++bins_[bin];
}

Histogram& MetricsRegistry::histogram(const std::string& name, double lo,
                                      double hi, int buckets) {
  auto [it, inserted] = histograms_.try_emplace(name, lo, hi, buckets);
  return it->second;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, c] : other.counters_) {
    counters_[name].value_ += c.value_;
  }
  for (const auto& [name, g] : other.gauges_) {
    if (!g.seen_) continue;
    Gauge& mine = gauges_[name];
    if (!mine.seen_ || g.min_ < mine.min_) mine.min_ = g.min_;
    if (!mine.seen_ || g.max_ > mine.max_) mine.max_ = g.max_;
    mine.last_ = g.last_;
    mine.seen_ = true;
  }
  for (const auto& [name, h] : other.histograms_) {
    auto [it, inserted] = histograms_.try_emplace(name, h);
    if (inserted) continue;
    Histogram& mine = it->second;
    if (h.count_ == 0) continue;
    if (mine.count_ == 0 || h.min_ < mine.min_) mine.min_ = h.min_;
    if (mine.count_ == 0 || h.max_ > mine.max_) mine.max_ = h.max_;
    mine.count_ += h.count_;
    mine.sum_ += h.sum_;
    const std::size_t n = std::min(mine.bins_.size(), h.bins_.size());
    for (std::size_t i = 0; i < n; ++i) mine.bins_[i] += h.bins_[i];
  }
}

double histogram_quantile(const Histogram& h, double q) {
  if (h.count() == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(h.count());
  const auto& bins = h.bins();
  const double width = (h.hi() - h.lo()) / h.buckets();
  double cum = 0.0;
  double value = h.max();
  for (std::size_t i = 0; i < bins.size(); ++i) {
    if (bins[i] == 0) continue;
    const double next = cum + static_cast<double>(bins[i]);
    if (next >= target) {
      if (i == 0) {
        value = h.min();  // underflow bucket: all we know is the min
      } else if (i == bins.size() - 1) {
        value = h.max();  // overflow bucket: all we know is the max
      } else {
        const double frac =
            bins[i] == 0 ? 0.0 : (target - cum) / static_cast<double>(bins[i]);
        value = h.lo() + (static_cast<double>(i - 1) + frac) * width;
      }
      break;
    }
    cum = next;
  }
  if (value < h.min()) value = h.min();
  if (value > h.max()) value = h.max();
  return value;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Trim to the shortest representation that round-trips.
  for (int prec = 1; prec < 17; ++prec) {
    char shorter[64];
    std::snprintf(shorter, sizeof(shorter), "%.*g", prec, v);
    if (std::strtod(shorter, nullptr) == v) return shorter;
  }
  return buf;
}

namespace {

std::string pad(int indent) { return std::string(indent, ' '); }

}  // namespace

std::string MetricsRegistry::to_json(int indent) const {
  const std::string p0 = pad(indent);
  const std::string p1 = pad(indent + 2);
  const std::string p2 = pad(indent + 4);
  std::ostringstream out;
  out << "{\n";
  out << p1 << "\"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out << (first ? "\n" : ",\n")
        << p2 << "\"" << name << "\": " << c.value();
    first = false;
  }
  out << (first ? "" : "\n" + p1) << "},\n";
  out << p1 << "\"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out << (first ? "\n" : ",\n") << p2 << "\"" << name
        << "\": {\"last\": " << json_number(g.last())
        << ", \"min\": " << json_number(g.min())
        << ", \"max\": " << json_number(g.max()) << "}";
    first = false;
  }
  out << (first ? "" : "\n" + p1) << "},\n";
  out << p1 << "\"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out << (first ? "\n" : ",\n") << p2 << "\"" << name
        << "\": {\"lo\": " << json_number(h.lo())
        << ", \"hi\": " << json_number(h.hi())
        << ", \"count\": " << h.count()
        << ", \"sum\": " << json_number(h.sum())
        << ", \"min\": " << json_number(h.count() ? h.min() : 0.0)
        << ", \"max\": " << json_number(h.count() ? h.max() : 0.0)
        << ", \"bins\": [";
    for (std::size_t i = 0; i < h.bins().size(); ++i) {
      if (i > 0) out << ", ";
      out << h.bins()[i];
    }
    out << "]}";
    first = false;
  }
  out << (first ? "" : "\n" + p1) << "}\n";
  out << p0 << "}";
  return out.str();
}

}  // namespace wehey::obs
