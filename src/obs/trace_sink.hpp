// Streaming storage for timeline events.
//
// A TraceSink is the backing store behind Timeline. By default it is a
// plain in-memory vector — exactly the pre-existing behaviour. When
// configured with a buffer capacity (env knob WEHEY_TRACE_BUFFER_EVENTS,
// wired in RunObservation::from_env), completed events spill to disk in
// bounded, fixed-size chunks as soon as the buffer fills, so a traced
// WEHEY_FULL=1 grid no longer has to hold the whole run in memory.
//
// Determinism contract: append order is preserved exactly — chunks are
// numbered in flush order and re-read 0..k-1 before the in-memory tail at
// finalize — so the rendered Chrome JSON / CSV is byte-identical to the
// unbounded in-memory path, for any buffer size and any WEHEY_THREADS.
//
// Chunk files live next to the final trace ("<base>.chunk000", ...) in a
// private binary framing and are deleted when the sink is cleared or
// destroyed; they are an implementation detail, not an output format.
#pragma once

#include <cstddef>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "obs/timeline_event.hpp"

namespace wehey::obs {

class TraceSink {
 public:
  TraceSink() = default;
  ~TraceSink();
  TraceSink(TraceSink&& other) noexcept;
  TraceSink& operator=(TraceSink&& other) noexcept;
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  /// Enable spilling: buffer at most `capacity_events` in memory, writing
  /// full buffers to "<chunk_base>.chunkNNN". capacity_events == 0 keeps
  /// the unbounded in-memory store. Call before the first append.
  void configure(std::size_t capacity_events, std::string chunk_base);

  bool spilling() const { return capacity_ > 0 && !chunk_base_.empty(); }
  std::size_t spilled() const { return spilled_; }
  std::size_t chunk_count() const { return chunks_; }

  void append(TimelineEvent ev);

  std::size_t size() const { return spilled_ + buffer_.size(); }
  bool empty() const { return size() == 0; }

  /// The in-memory tail (everything, when not spilling).
  const std::vector<TimelineEvent>& buffer() const { return buffer_; }
  /// Mutable access for bulk moves (Timeline::absorb); the caller must
  /// keep append order intact.
  std::vector<TimelineEvent>& mutable_buffer() { return buffer_; }

  /// Visit every event in append order: chunk files 0..k-1, then the
  /// buffer. Returns false if a chunk file is missing or corrupt.
  bool for_each(const std::function<void(const TimelineEvent&)>& fn) const;

  /// Drop everything: buffered events and any chunk files on disk.
  void clear();

  /// Path of spill chunk `index` for a given base (exposed for tests).
  static std::string chunk_path(const std::string& base, std::size_t index);

 private:
  void flush_chunk();
  void remove_chunks();

  std::vector<TimelineEvent> buffer_;
  std::size_t capacity_ = 0;  ///< 0 = unbounded in-memory
  std::string chunk_base_;
  std::size_t chunks_ = 0;
  std::size_t spilled_ = 0;
};

}  // namespace wehey::obs
