// Span/event tracing keyed on *simulated* time.
//
// A Timeline buffers three Chrome-trace-format event shapes:
//
//   * complete spans ("ph":"X") — a named stage with a sim-time start and
//     duration (the session pipeline records one per stage: wehe test,
//     topology query, simultaneous replays, gathering, analysis);
//   * instants ("ph":"i") — point events (retries, backoff, fault hits);
//   * counter samples ("ph":"C") — a named numeric series over sim time
//     (event-heap depth, queue backlog).
//
// Timestamps are simulated nanoseconds rendered as microseconds (Chrome's
// native unit), so a trace opens directly in chrome://tracing or Perfetto.
// Like MetricsRegistry, a Timeline is single-owner on the hot path and
// aggregation happens by absorbing child timelines in a deterministic
// order; each absorbed child gets the next process id ("pid"), so one
// trace file shows every trial/phase as its own process track and the
// bytes are identical regardless of WEHEY_THREADS.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/time.hpp"

namespace wehey::obs {

struct TimelineEvent {
  enum class Kind : std::uint8_t { Span, Instant, Counter };

  Kind kind = Kind::Instant;
  Time at = 0;        ///< sim time (span: start)
  Time duration = 0;  ///< span only
  std::int32_t pid = 0;
  std::int32_t tid = 0;
  std::string name;
  std::string category;
  /// Pre-rendered JSON object body for "args" (no braces), e.g.
  /// "\"attempt\": 2"; empty = no args. Counter samples store the value
  /// here as "\"value\": <v>".
  std::string args;
};

class Timeline {
 public:
  /// A span covering [start, end] of simulated time.
  void span(std::string name, std::string category, Time start, Time end,
            std::int32_t tid = 0, std::string args = {});
  /// A point event.
  void instant(std::string name, std::string category, Time at,
               std::int32_t tid = 0, std::string args = {});
  /// One sample of a numeric series.
  void counter(std::string name, Time at, double value, std::int32_t tid = 0);

  /// Label a pid (emitted as Chrome process_name metadata).
  void name_track(std::int32_t pid, std::string name);

  /// Append `child`'s events under fresh pids: child pid p becomes
  /// next_pid + p. Deterministic given a deterministic absorb order.
  void absorb(Timeline&& child);

  const std::vector<TimelineEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  /// Number of pid tracks this timeline spans (>= 1 once non-empty).
  std::int32_t pid_count() const { return pid_count_; }

  /// Chrome trace format: {"traceEvents": [...]} with stable field order.
  void write_chrome_json(std::FILE* out) const;
  /// Flat CSV timeline: kind,pid,tid,sim_us,dur_us,category,name,detail.
  void write_csv(std::FILE* out) const;
  std::string chrome_json() const;

 private:
  std::vector<TimelineEvent> events_;
  std::vector<std::pair<std::int32_t, std::string>> track_names_;
  std::int32_t pid_count_ = 1;
};

/// Escape a string for embedding in a JSON string literal.
std::string json_escape(const std::string& s);

}  // namespace wehey::obs
