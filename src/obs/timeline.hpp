// Span/event tracing keyed on *simulated* time.
//
// A Timeline records three Chrome-trace-format event shapes:
//
//   * complete spans ("ph":"X") — a named stage with a sim-time start and
//     duration (the session pipeline records one per stage: wehe test,
//     topology query, simultaneous replays, gathering, analysis);
//   * instants ("ph":"i") — point events (retries, backoff, fault hits);
//   * counter samples ("ph":"C") — a named numeric series over sim time
//     (event-heap depth, queue backlog).
//
// Timestamps are simulated nanoseconds rendered as microseconds (Chrome's
// native unit), so a trace opens directly in chrome://tracing or Perfetto.
// Like MetricsRegistry, a Timeline is single-owner on the hot path and
// aggregation happens by absorbing child timelines in a deterministic
// order; each absorbed child gets the next process id ("pid"), so one
// trace file shows every trial/phase as its own process track and the
// bytes are identical regardless of WEHEY_THREADS.
//
// Storage is a TraceSink: unbounded in-memory by default, or — once
// configure_spill() is called (WEHEY_TRACE_BUFFER_EVENTS) — a bounded
// buffer that spills full chunks to disk and re-merges them in order at
// write time, so the rendered trace is byte-identical either way.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "obs/timeline_event.hpp"
#include "obs/trace_sink.hpp"

namespace wehey::obs {

class Timeline {
 public:
  /// A span covering [start, end] of simulated time.
  void span(std::string name, std::string category, Time start, Time end,
            std::int32_t tid = 0, std::string args = {});
  /// A point event.
  void instant(std::string name, std::string category, Time at,
               std::int32_t tid = 0, std::string args = {});
  /// One sample of a numeric series.
  void counter(std::string name, Time at, double value, std::int32_t tid = 0);

  /// Label a pid (emitted as Chrome process_name metadata).
  void name_track(std::int32_t pid, std::string name);

  /// Append `child`'s events under fresh pids: child pid p becomes
  /// next_pid + p. Deterministic given a deterministic absorb order.
  void absorb(Timeline&& child);

  /// Bound the in-memory buffer at `max_buffered_events`, spilling full
  /// buffers to "<spill_base>.chunkNNN" (0 = keep everything in memory).
  /// Call once, before recording; typically only the run-level timeline
  /// spills — per-trial children stay in memory and absorb as usual.
  void configure_spill(std::size_t max_buffered_events,
                       std::string spill_base);

  /// The in-memory tail; all events when spilling is off.
  const std::vector<TimelineEvent>& events() const { return sink_.buffer(); }
  std::size_t size() const { return sink_.size(); }
  bool empty() const { return sink_.empty(); }
  /// Events already flushed to chunk files (0 unless spilling kicked in).
  std::size_t spilled_events() const { return sink_.spilled(); }
  std::size_t spill_chunks() const { return sink_.chunk_count(); }
  /// Number of pid tracks this timeline spans (>= 1 once non-empty).
  std::int32_t pid_count() const { return pid_count_; }

  /// Visit every recorded event in order — the in-memory tail plus any
  /// spilled chunks. Returns false if a chunk file went missing.
  bool for_each_event(
      const std::function<void(const TimelineEvent&)>& fn) const;

  /// Chrome trace format: {"traceEvents": [...]} with stable field order.
  void write_chrome_json(std::FILE* out) const;
  /// Flat CSV timeline: kind,pid,tid,sim_us,dur_us,category,name,detail.
  void write_csv(std::FILE* out) const;
  std::string chrome_json() const;

 private:
  TraceSink sink_;
  std::vector<std::pair<std::int32_t, std::string>> track_names_;
  std::int32_t pid_count_ = 1;
};

/// Escape a string for embedding in a JSON string literal.
std::string json_escape(const std::string& s);

}  // namespace wehey::obs
