// The one event shape shared by Timeline (the recording API) and
// TraceSink (the storage / spill layer).
#pragma once

#include <cstdint>
#include <string>

#include "common/time.hpp"

namespace wehey::obs {

struct TimelineEvent {
  enum class Kind : std::uint8_t { Span, Instant, Counter };

  Kind kind = Kind::Instant;
  Time at = 0;        ///< sim time (span: start)
  Time duration = 0;  ///< span only
  std::int32_t pid = 0;
  std::int32_t tid = 0;
  std::string name;
  std::string category;
  /// Pre-rendered JSON object body for "args" (no braces), e.g.
  /// "\"attempt\": 2"; empty = no args. Counter samples store the value
  /// here as "\"value\": <v>".
  std::string args;
};

}  // namespace wehey::obs
