#include "obs/runtime.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <sstream>
#include <thread>

#include <unistd.h>

#include "obs/aggregate.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/timeline.hpp"

namespace wehey::obs::runtime {
namespace {

constexpr int kMaxSlots = 256;     ///< execution contexts ever profiled
constexpr int kHistBuckets = 48;   ///< latency histogram resolution

/// Lock-free latency histogram over nanosecond observations, displayed in
/// `unit_ns` (1e3 = µs, 1e6 = ms). Same underflow/buckets/overflow layout
/// as obs::Histogram so snapshots render through the same quantile code.
struct AtomicHist {
  double lo;        ///< in display units
  double hi;        ///< in display units
  double unit_ns;   ///< nanoseconds per display unit

  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> sum_ns{0};
  std::atomic<std::uint64_t> min_ns{UINT64_MAX};
  std::atomic<std::uint64_t> max_ns{0};
  std::array<std::atomic<std::uint64_t>, kHistBuckets + 2> bins{};

  AtomicHist(double lo_units, double hi_units, double ns_per_unit)
      : lo(lo_units), hi(hi_units), unit_ns(ns_per_unit) {}

  void observe(std::uint64_t ns) {
    count.fetch_add(1, std::memory_order_relaxed);
    sum_ns.fetch_add(ns, std::memory_order_relaxed);
    std::uint64_t seen = min_ns.load(std::memory_order_relaxed);
    while (ns < seen &&
           !min_ns.compare_exchange_weak(seen, ns, std::memory_order_relaxed)) {
    }
    seen = max_ns.load(std::memory_order_relaxed);
    while (ns > seen &&
           !max_ns.compare_exchange_weak(seen, ns, std::memory_order_relaxed)) {
    }
    const double v = static_cast<double>(ns) / unit_ns;
    int bin;
    if (v < lo) {
      bin = 0;
    } else if (v >= hi) {
      bin = kHistBuckets + 1;
    } else {
      bin = 1 + static_cast<int>((v - lo) / ((hi - lo) / kHistBuckets));
      bin = std::min(bin, kHistBuckets);
    }
    bins[static_cast<std::size_t>(bin)].fetch_add(1,
                                                  std::memory_order_relaxed);
  }

  void reset() {
    count.store(0, std::memory_order_relaxed);
    sum_ns.store(0, std::memory_order_relaxed);
    min_ns.store(UINT64_MAX, std::memory_order_relaxed);
    max_ns.store(0, std::memory_order_relaxed);
    for (auto& b : bins) b.store(0, std::memory_order_relaxed);
  }

  HistSnapshot snap() const {
    HistSnapshot s;
    s.lo = lo;
    s.hi = hi;
    s.count = count.load(std::memory_order_relaxed);
    s.sum = static_cast<double>(sum_ns.load(std::memory_order_relaxed)) /
            unit_ns;
    const std::uint64_t mn = min_ns.load(std::memory_order_relaxed);
    s.min = s.count > 0 ? static_cast<double>(mn) / unit_ns : 0.0;
    s.max = static_cast<double>(max_ns.load(std::memory_order_relaxed)) /
            unit_ns;
    s.bins.reserve(bins.size());
    for (const auto& b : bins) {
      s.bins.push_back(b.load(std::memory_order_relaxed));
    }
    return s;
  }
};

/// One execution context's counters. Written only by the owning thread
/// (relaxed), read by snapshot(); padded so writers never false-share.
struct alignas(64) Slot {
  std::atomic<std::uint64_t> busy_ns{0};
  std::atomic<std::uint64_t> idle_ns{0};
  std::atomic<std::uint64_t> wait_ns{0};
  std::atomic<std::uint64_t> chunks{0};
  std::atomic<std::uint64_t> tasks{0};
  std::atomic<int> kind{-1};  ///< -1 unused, else ThreadKind
};

struct State {
  std::array<Slot, kMaxSlots> slots;
  std::atomic<int> slot_count{0};
  std::mutex register_mu;

  std::atomic<std::uint64_t> jobs{0};
  std::atomic<std::uint64_t> queue_high_water{0};
  std::atomic<std::uint64_t> drain_waits{0};
  std::atomic<std::uint64_t> trials{0};
  std::atomic<std::uint64_t> trials_supervised{0};
  std::atomic<std::uint64_t> heap_chunks{0};
  std::atomic<std::uint64_t> heap_bytes{0};
  std::atomic<std::uint64_t> start_ns{0};

  AtomicHist submit_to_start_us{0.0, 5000.0, 1e3};  ///< 0..5 ms in µs
  AtomicHist trial_wall_ms{0.0, 10000.0, 1e6};      ///< 0..10 s in ms
};

State& state() {
  static State s;
  return s;
}

thread_local Slot* t_slot = nullptr;
/// Nesting depth of executing regions on this thread (see ScopedBusy):
/// busy nanoseconds are charged only when the noting region is outermost.
thread_local int t_busy_depth = 0;

Slot* slot_for(ThreadKind kind) {
  if (t_slot != nullptr) return t_slot;
  State& s = state();
  std::lock_guard<std::mutex> lock(s.register_mu);
  const int i = s.slot_count.load(std::memory_order_relaxed);
  if (i >= kMaxSlots) return nullptr;  // beyond capacity: drop samples
  s.slot_count.store(i + 1, std::memory_order_relaxed);
  Slot* slot = &s.slots[static_cast<std::size_t>(i)];
  slot->kind.store(static_cast<int>(kind), std::memory_order_relaxed);
  t_slot = slot;
  return slot;
}

void atomic_max(std::atomic<std::uint64_t>& a, std::uint64_t v) {
  std::uint64_t seen = a.load(std::memory_order_relaxed);
  while (v > seen &&
         !a.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
}

/// WEHEY_THREADS if positive, else detected hardware concurrency —
/// parallel::configured_threads() restated here because obs sits below
/// the parallel library in the link order.
unsigned env_configured_threads() {
  if (const char* env = std::getenv("WEHEY_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<unsigned>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

/// Peak resident set (VmHWM) in KiB from /proc/self/status; 0 when the
/// proc filesystem is unavailable.
std::uint64_t rss_peak_kb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::uint64_t kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      kb = std::strtoull(line + 6, nullptr, 10);
      break;
    }
  }
  std::fclose(f);
  return kb;
}

void hist_json(std::ostringstream& out, const HistSnapshot& h,
               const char* pad) {
  out << "{\"lo\": " << json_number(h.lo) << ", \"hi\": " << json_number(h.hi)
      << ", \"count\": " << h.count << ", \"sum\": " << json_number(h.sum)
      << ", \"min\": " << json_number(h.min)
      << ", \"max\": " << json_number(h.max) << ",\n"
      << pad << "\"bins\": [";
  for (std::size_t i = 0; i < h.bins.size(); ++i) {
    out << (i == 0 ? "" : ", ") << h.bins[i];
  }
  out << "]}";
}

}  // namespace

#ifndef WEHEY_OBS_DISABLED
namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail
#endif

void set_enabled(bool on) {
#ifdef WEHEY_OBS_DISABLED
  (void)on;
#else
  if (on && state().start_ns.load(std::memory_order_relaxed) == 0) {
    state().start_ns.store(now_ns(), std::memory_order_relaxed);
  }
  detail::g_enabled.store(on, std::memory_order_relaxed);
#endif
}

bool enable_from_env() {
  if (!runtime_report_path_from_env().empty()) set_enabled(true);
  return enabled();
}

void reset() {
  State& s = state();
  const int n = s.slot_count.load(std::memory_order_relaxed);
  for (int i = 0; i < n; ++i) {
    Slot& slot = s.slots[static_cast<std::size_t>(i)];
    slot.busy_ns.store(0, std::memory_order_relaxed);
    slot.idle_ns.store(0, std::memory_order_relaxed);
    slot.wait_ns.store(0, std::memory_order_relaxed);
    slot.chunks.store(0, std::memory_order_relaxed);
    slot.tasks.store(0, std::memory_order_relaxed);
  }
  s.jobs.store(0, std::memory_order_relaxed);
  s.queue_high_water.store(0, std::memory_order_relaxed);
  s.drain_waits.store(0, std::memory_order_relaxed);
  s.trials.store(0, std::memory_order_relaxed);
  s.trials_supervised.store(0, std::memory_order_relaxed);
  s.heap_chunks.store(0, std::memory_order_relaxed);
  s.heap_bytes.store(0, std::memory_order_relaxed);
  s.submit_to_start_us.reset();
  s.trial_wall_ms.reset();
  s.start_ns.store(now_ns(), std::memory_order_relaxed);
}

void register_thread(ThreadKind kind) {
  if (!enabled()) return;
  slot_for(kind);
}

void note_idle(std::uint64_t ns) {
  if (!enabled()) return;
  if (Slot* slot = slot_for(ThreadKind::kWorker)) {
    slot->idle_ns.fetch_add(ns, std::memory_order_relaxed);
  }
}

void note_drain_wait(std::uint64_t ns) {
  if (!enabled()) return;
  state().drain_waits.fetch_add(1, std::memory_order_relaxed);
  if (Slot* slot = slot_for(ThreadKind::kCaller)) {
    slot->wait_ns.fetch_add(ns, std::memory_order_relaxed);
  }
}

void busy_enter() { ++t_busy_depth; }

void busy_exit() { --t_busy_depth; }

void note_chunk(std::uint64_t ns, std::uint64_t tasks) {
  if (!enabled()) return;
  if (Slot* slot = slot_for(ThreadKind::kCaller)) {
    if (t_busy_depth <= 1) {
      slot->busy_ns.fetch_add(ns, std::memory_order_relaxed);
    }
    slot->chunks.fetch_add(1, std::memory_order_relaxed);
    slot->tasks.fetch_add(tasks, std::memory_order_relaxed);
  }
}

void note_job(std::size_t n) {
  if (!enabled()) return;
  State& s = state();
  s.jobs.fetch_add(1, std::memory_order_relaxed);
  atomic_max(s.queue_high_water, static_cast<std::uint64_t>(n));
}

void note_submit_to_start(std::uint64_t ns) {
  if (!enabled()) return;
  state().submit_to_start_us.observe(ns);
}

void note_serial_tasks(std::uint64_t n, std::uint64_t ns) {
  if (!enabled()) return;
  if (Slot* slot = slot_for(ThreadKind::kCaller)) {
    if (t_busy_depth <= 1) {
      slot->busy_ns.fetch_add(ns, std::memory_order_relaxed);
    }
    slot->tasks.fetch_add(n, std::memory_order_relaxed);
  }
}

void note_trial(double wall_ms) {
  if (!enabled()) return;
  State& s = state();
  s.trials.fetch_add(1, std::memory_order_relaxed);
  s.trial_wall_ms.observe(static_cast<std::uint64_t>(wall_ms * 1e6));
}

void note_trial_supervised() {
  if (!enabled()) return;
  state().trials_supervised.fetch_add(1, std::memory_order_relaxed);
}

void note_event_heap_chunk(std::size_t bytes) {
  if (!enabled()) return;
  State& s = state();
  s.heap_chunks.fetch_add(1, std::memory_order_relaxed);
  s.heap_bytes.fetch_add(bytes, std::memory_order_relaxed);
}

RuntimeSnapshot snapshot() {
  State& s = state();
  RuntimeSnapshot snap;
  const std::uint64_t start = s.start_ns.load(std::memory_order_relaxed);
  snap.wall_seconds =
      start > 0 ? static_cast<double>(now_ns() - start) / 1e9 : 0.0;
  snap.configured_threads = env_configured_threads();
  const unsigned hw = std::thread::hardware_concurrency();
  snap.hardware_threads = hw > 0 ? hw : 1;

  const int n = s.slot_count.load(std::memory_order_relaxed);
  double total_busy_ns = 0.0, total_idle_ns = 0.0, total_wait_ns = 0.0;
  double max_busy_ns = 0.0;
  int busy_contexts = 0;
  for (int i = 0; i < n; ++i) {
    const Slot& slot = s.slots[static_cast<std::size_t>(i)];
    WorkerSnapshot w;
    w.id = i;
    w.kind = static_cast<ThreadKind>(slot.kind.load(std::memory_order_relaxed));
    const double busy =
        static_cast<double>(slot.busy_ns.load(std::memory_order_relaxed));
    const double idle =
        static_cast<double>(slot.idle_ns.load(std::memory_order_relaxed));
    const double wait =
        static_cast<double>(slot.wait_ns.load(std::memory_order_relaxed));
    w.busy_ms = busy / 1e6;
    w.idle_ms = idle / 1e6;
    w.wait_ms = wait / 1e6;
    w.chunks = slot.chunks.load(std::memory_order_relaxed);
    w.tasks = slot.tasks.load(std::memory_order_relaxed);
    snap.tasks += w.tasks;
    total_busy_ns += busy;
    total_idle_ns += idle;
    total_wait_ns += wait;
    if (busy > 0.0) {
      ++busy_contexts;
      max_busy_ns = std::max(max_busy_ns, busy);
    }
    snap.workers.push_back(w);
  }

  snap.jobs = s.jobs.load(std::memory_order_relaxed);
  snap.queue_depth_high_water =
      s.queue_high_water.load(std::memory_order_relaxed);
  snap.drain_waits = s.drain_waits.load(std::memory_order_relaxed);
  snap.submit_to_start_us = s.submit_to_start_us.snap();
  snap.trials = s.trials.load(std::memory_order_relaxed);
  snap.trials_supervised = s.trials_supervised.load(std::memory_order_relaxed);
  snap.trial_wall_ms = s.trial_wall_ms.snap();
  snap.event_heap_chunks = s.heap_chunks.load(std::memory_order_relaxed);
  snap.event_heap_bytes = s.heap_bytes.load(std::memory_order_relaxed);
  snap.rss_peak_kb = rss_peak_kb();

  const double wall_ns = snap.wall_seconds * 1e9;
  if (!snap.workers.empty() && wall_ns > 0.0) {
    snap.parallel_efficiency =
        total_busy_ns / (static_cast<double>(snap.workers.size()) * wall_ns);
  }
  if (busy_contexts > 1) {
    snap.worker_imbalance =
        max_busy_ns / (total_busy_ns / static_cast<double>(busy_contexts));
  }
  const double accounted = total_busy_ns + total_idle_ns + total_wait_ns;
  if (accounted > 0.0) {
    snap.wait_fraction = total_wait_ns / accounted;
    snap.idle_fraction = total_idle_ns / accounted;
  }
  return snap;
}

std::string runtime_report_json(const RuntimeSnapshot& snap,
                                const std::string& run_name) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"schema\": \"" << kRuntimeReportSchema << "\",\n";
  out << "  \"run\": \"" << json_escape(run_name) << "\",\n";
  out << "  \"wall_seconds\": " << json_number(snap.wall_seconds) << ",\n";
  out << "  \"threads\": {\"configured\": " << snap.configured_threads
      << ", \"hardware\": " << snap.hardware_threads
      << ", \"contexts\": " << snap.workers.size() << ", \"oversubscribed\": "
      << (snap.configured_threads > snap.hardware_threads ? "true" : "false")
      << "},\n";
  out << "  \"workers\": [";
  for (std::size_t i = 0; i < snap.workers.size(); ++i) {
    const WorkerSnapshot& w = snap.workers[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"id\": " << w.id << ", \"kind\": \""
        << (w.kind == ThreadKind::kWorker ? "worker" : "caller") << "\""
        << ", \"busy_ms\": " << json_number(w.busy_ms)
        << ", \"idle_ms\": " << json_number(w.idle_ms)
        << ", \"wait_ms\": " << json_number(w.wait_ms)
        << ", \"chunks\": " << w.chunks << ", \"tasks\": " << w.tasks << "}";
  }
  out << (snap.workers.empty() ? "" : "\n  ") << "],\n";
  out << "  \"scheduler\": {\n";
  out << "    \"jobs\": " << snap.jobs << ",\n";
  out << "    \"tasks\": " << snap.tasks << ",\n";
  out << "    \"queue_depth_high_water\": " << snap.queue_depth_high_water
      << ",\n";
  out << "    \"drain_waits\": " << snap.drain_waits << ",\n";
  out << "    \"parallel_efficiency\": "
      << json_number(snap.parallel_efficiency) << ",\n";
  out << "    \"worker_imbalance\": " << json_number(snap.worker_imbalance)
      << ",\n";
  out << "    \"wait_fraction\": " << json_number(snap.wait_fraction)
      << ",\n";
  out << "    \"idle_fraction\": " << json_number(snap.idle_fraction)
      << ",\n";
  out << "    \"submit_to_start_us\": ";
  hist_json(out, snap.submit_to_start_us, "      ");
  out << "\n  },\n";
  out << "  \"trials\": {\n";
  out << "    \"count\": " << snap.trials << ",\n";
  out << "    \"supervised\": " << snap.trials_supervised << ",\n";
  out << "    \"wall_ms\": ";
  hist_json(out, snap.trial_wall_ms, "      ");
  out << "\n  },\n";
  out << "  \"process\": {\"rss_peak_kb\": " << snap.rss_peak_kb
      << ", \"event_heap_chunks\": " << snap.event_heap_chunks
      << ", \"event_heap_bytes\": " << snap.event_heap_bytes << "}\n";
  out << "}\n";
  return out.str();
}

std::string runtime_report_path_from_env() {
  if (const char* path = std::getenv("WEHEY_RUNTIME_REPORT")) {
    if (path[0] != 0 && std::string(path) != "0") return path;
  }
  return {};
}

bool write_runtime_report_from_env(const std::string& run_name) {
  if (!enabled()) return true;
  const std::string path = runtime_report_path_from_env();
  if (path.empty()) return true;
  if (!write_report_file(path, runtime_report_json(snapshot(), run_name))) {
    std::fprintf(stderr, "runtime report: FAILED to write %s\n", path.c_str());
    return false;
  }
  std::fprintf(stderr, "runtime report: %s\n", path.c_str());
  return true;
}

}  // namespace wehey::obs::runtime

namespace wehey::obs {

namespace {

ProgressMeter::Mode progress_mode_from_env() {
  const char* v = std::getenv("WEHEY_PROGRESS");
  if (v == nullptr || v[0] == 0) return ProgressMeter::Mode::kOff;
  const std::string mode(v);
  if (mode == "plain") return ProgressMeter::Mode::kPlain;
  if (mode == "tty") {
    // Carriage-return repainting only makes sense on a real terminal;
    // redirected stderr (CI logs, tee'd files) gets the plain one-line-
    // per-print form instead of a wall of control characters.
    return isatty(fileno(stderr)) != 0 ? ProgressMeter::Mode::kTty
                                       : ProgressMeter::Mode::kPlain;
  }
  return ProgressMeter::Mode::kOff;
}

}  // namespace

ProgressMeter::ProgressMeter(std::string label)
    : label_(std::move(label)),
      mode_(progress_mode_from_env()),
      knife_edge_threshold_(knife_edge_margin_from_env()),
      start_(std::chrono::steady_clock::now()),
      last_print_(start_ - std::chrono::hours(1)) {}

void ProgressMeter::note_done(const std::string& verdict, bool has_margin,
                              double margin) {
  ++completed_;
  if (verdict == kBudgetExhaustedVerdict) ++quarantined_;
  if (has_margin && std::abs(margin) < knife_edge_threshold_) ++knife_edge_;
  maybe_print(/*force=*/total_ > 0 && completed_ == total_);
}

void ProgressMeter::maybe_print(bool force) {
  if (mode_ == Mode::kOff) return;
  const auto now = std::chrono::steady_clock::now();
  if (!force && now - last_print_ < std::chrono::seconds(1)) return;
  last_print_ = now;
  const double secs = std::chrono::duration<double>(now - start_).count();
  const double rate =
      secs > 0.0 ? static_cast<double>(completed_) / secs : 0.0;
  char line[256];
  int len;
  if (total_ > 0) {
    const double eta =
        rate > 0.0 ? static_cast<double>(total_ - completed_) / rate : 0.0;
    len = std::snprintf(line, sizeof(line),
                        "%s: %zu/%zu runs  %.1f runs/s  ETA %.0fs",
                        label_.c_str(), completed_, total_, rate, eta);
  } else {
    len = std::snprintf(line, sizeof(line), "%s: %zu runs  %.1f runs/s",
                        label_.c_str(), completed_, rate);
  }
  if (resumed_ > 0 || quarantined_ > 0 || knife_edge_ > 0) {
    std::snprintf(line + len, sizeof(line) - static_cast<std::size_t>(len),
                  "  (resumed %zu, quarantined %zu, knife-edge %zu)",
                  resumed_, quarantined_, knife_edge_);
  }
  if (mode_ == Mode::kTty) {
    // Rewrite the line in place; pad so a shorter update fully overwrites
    // the previous one.
    std::fprintf(stderr, "\r%-100s", line);
    std::fflush(stderr);
    line_open_ = true;
  } else {
    std::fprintf(stderr, "%s\n", line);
  }
}

void ProgressMeter::finish() {
  if (finished_) return;
  finished_ = true;
  if (line_open_) {
    std::fputc('\n', stderr);
    line_open_ = false;
  }
  if (completed_ == 0) return;
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  const double rate =
      secs > 0.0 ? static_cast<double>(completed_) / secs : 0.0;
  // Always printed (even WEHEY_PROGRESS=off): the one line CI logs can
  // grep for sweep throughput without parsing JSON.
  std::fprintf(stderr,
               "%s: %zu runs in %.2fs (%.1f runs/s, %zu resumed from "
               "checkpoint)\n",
               label_.c_str(), completed_, secs, rate, resumed_);
}

}  // namespace wehey::obs
