#include "obs/timeline.hpp"

#include <sstream>
#include <utility>

#include "obs/metrics.hpp"

namespace wehey::obs {

void Timeline::span(std::string name, std::string category, Time start,
                    Time end, std::int32_t tid, std::string args) {
  TimelineEvent ev;
  ev.kind = TimelineEvent::Kind::Span;
  ev.at = start;
  ev.duration = end > start ? end - start : 0;
  ev.tid = tid;
  ev.name = std::move(name);
  ev.category = std::move(category);
  ev.args = std::move(args);
  sink_.append(std::move(ev));
}

void Timeline::instant(std::string name, std::string category, Time at,
                       std::int32_t tid, std::string args) {
  TimelineEvent ev;
  ev.kind = TimelineEvent::Kind::Instant;
  ev.at = at;
  ev.tid = tid;
  ev.name = std::move(name);
  ev.category = std::move(category);
  ev.args = std::move(args);
  sink_.append(std::move(ev));
}

void Timeline::counter(std::string name, Time at, double value,
                       std::int32_t tid) {
  TimelineEvent ev;
  ev.kind = TimelineEvent::Kind::Counter;
  ev.at = at;
  ev.tid = tid;
  ev.name = std::move(name);
  ev.args = "\"value\": " + json_number(value);
  sink_.append(std::move(ev));
}

void Timeline::name_track(std::int32_t pid, std::string name) {
  track_names_.emplace_back(pid, std::move(name));
}

void Timeline::configure_spill(std::size_t max_buffered_events,
                               std::string spill_base) {
  sink_.configure(max_buffered_events, std::move(spill_base));
}

bool Timeline::for_each_event(
    const std::function<void(const TimelineEvent&)>& fn) const {
  return sink_.for_each(fn);
}

void Timeline::absorb(Timeline&& child) {
  const std::int32_t base = pid_count_;
  if (child.sink_.spilling()) {
    // Rare (children normally buffer in memory): replay the child's full
    // event stream, chunks included, in its append order.
    child.sink_.for_each([&](const TimelineEvent& ev) {
      TimelineEvent copy = ev;
      copy.pid += base;
      sink_.append(std::move(copy));
    });
  } else {
    for (auto& ev : child.sink_.mutable_buffer()) {
      ev.pid += base;
      sink_.append(std::move(ev));
    }
  }
  for (auto& [pid, name] : child.track_names_) {
    track_names_.emplace_back(pid + base, std::move(name));
  }
  pid_count_ += child.pid_count_;
  child.sink_.clear();
  child.track_names_.clear();
  child.pid_count_ = 1;
}

namespace {

/// Chrome traces use microsecond timestamps; keep sub-microsecond detail
/// as a fraction (sim time is exact nanoseconds).
std::string ts_us(Time t) {
  if (t % 1000 == 0) return std::to_string(t / 1000);
  return json_number(static_cast<double>(t) / 1000.0);
}

void write_event(std::FILE* out, const TimelineEvent& ev, bool& first) {
  std::fprintf(out, "%s  {", first ? "\n" : ",\n");
  first = false;
  const char* ph = ev.kind == TimelineEvent::Kind::Span      ? "X"
                   : ev.kind == TimelineEvent::Kind::Counter ? "C"
                                                             : "i";
  std::fprintf(out, "\"name\": \"%s\", \"ph\": \"%s\", \"ts\": %s",
               json_escape(ev.name).c_str(), ph, ts_us(ev.at).c_str());
  if (ev.kind == TimelineEvent::Kind::Span) {
    std::fprintf(out, ", \"dur\": %s", ts_us(ev.duration).c_str());
  }
  if (ev.kind == TimelineEvent::Kind::Instant) {
    std::fprintf(out, ", \"s\": \"t\"");
  }
  if (!ev.category.empty()) {
    std::fprintf(out, ", \"cat\": \"%s\"", json_escape(ev.category).c_str());
  }
  std::fprintf(out, ", \"pid\": %d, \"tid\": %d", ev.pid, ev.tid);
  if (!ev.args.empty()) {
    std::fprintf(out, ", \"args\": {%s}", ev.args.c_str());
  }
  std::fprintf(out, "}");
}

}  // namespace

void Timeline::write_chrome_json(std::FILE* out) const {
  std::fprintf(out, "{\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [");
  bool first = true;
  for (const auto& [pid, name] : track_names_) {
    std::fprintf(out,
                 "%s  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": "
                 "%d, \"tid\": 0, \"args\": {\"name\": \"%s\"}}",
                 first ? "\n" : ",\n", pid, json_escape(name).c_str());
    first = false;
  }
  sink_.for_each([&](const TimelineEvent& ev) { write_event(out, ev, first); });
  std::fprintf(out, "\n]}\n");
}

void Timeline::write_csv(std::FILE* out) const {
  std::fprintf(out, "kind,pid,tid,sim_us,dur_us,category,name,detail\n");
  sink_.for_each([&](const TimelineEvent& ev) {
    const char* kind = ev.kind == TimelineEvent::Kind::Span      ? "span"
                       : ev.kind == TimelineEvent::Kind::Counter ? "counter"
                                                                 : "instant";
    std::string detail = ev.args;
    for (auto& ch : detail) {
      if (ch == ',' || ch == '\n') ch = ';';
    }
    std::fprintf(out, "%s,%d,%d,%s,%s,%s,%s,%s\n", kind, ev.pid, ev.tid,
                 ts_us(ev.at).c_str(),
                 ev.kind == TimelineEvent::Kind::Span
                     ? ts_us(ev.duration).c_str()
                     : "0",
                 ev.category.c_str(), ev.name.c_str(), detail.c_str());
  });
}

std::string Timeline::chrome_json() const {
  // Render through a temp buffer so the string path shares the FILE* code.
  std::string result;
  std::FILE* tmp = std::tmpfile();
  if (tmp == nullptr) return result;
  write_chrome_json(tmp);
  const long len = std::ftell(tmp);
  if (len > 0) {
    result.resize(static_cast<std::size_t>(len));
    std::rewind(tmp);
    const std::size_t got = std::fread(result.data(), 1, result.size(), tmp);
    result.resize(got);
  }
  std::fclose(tmp);
  return result;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace wehey::obs
