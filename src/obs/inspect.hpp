// Offline analyzer behind `wehey_cli inspect <report|trace|sweep>`.
//
// Reads the JSON artifacts the obs layer emits — wehey.run_report.v1/v2/v3
// RunReports, wehey.sweep_report.v1 aggregates and Chrome-trace timelines —
// and renders human-readable summaries: per-stage latency and v3 self-time
// profiles, p50/p90/p99 percentiles per histogram (taken from the v2+
// "percentiles" section when present, re-derived from the bins for v1
// reports), per-flow RTT/loss tables, queue-residency and drop-by-reason
// breakdowns, and link utilization. Every optional section may be absent
// (older schema versions, fault-free runs): the renderer skips what is
// missing instead of failing.
//
// The JSON model is deliberately tiny (no external dependency): objects
// preserve key order, numbers are doubles — exactly what the writers in
// this directory produce.
#pragma once

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace wehey::obs {

struct JsonValue {
  enum class Type { Null, Bool, Number, String, Array, Object };

  Type type = Type::Null;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(const std::string& key) const;
  double num_or(double fallback) const {
    return type == Type::Number ? number : fallback;
  }
};

/// Strict-enough recursive-descent parse of `text` (the subset the obs
/// writers emit: null/bool/number/string/array/object, \uXXXX escapes
/// passed through verbatim). Returns false and fills `error` on bad input.
bool json_parse(const std::string& text, JsonValue& out,
                std::string* error = nullptr);

bool is_run_report(const JsonValue& doc);
bool is_chrome_trace(const JsonValue& doc);
/// Schema tag starts with "wehey.runtime_report." (the engine-telemetry
/// sidecar — see obs/runtime.hpp).
bool is_runtime_report(const JsonValue& doc);

void render_report(const JsonValue& doc, std::FILE* out);
void render_sweep(const JsonValue& doc, std::FILE* out);
void render_trace(const JsonValue& doc, std::FILE* out);
/// Worker table, scheduler-efficiency metrics and latency percentiles of
/// a runtime sidecar.
void render_runtime(const JsonValue& doc, std::FILE* out);

/// Slurp a file; false on I/O error.
bool read_file(const std::string& path, std::string& out);

/// Convenience: read `path`, detect report vs trace, render to `out`.
/// Returns false (with a message on stderr) on parse or format errors.
bool inspect_file(const std::string& path, std::FILE* out);

}  // namespace wehey::obs
